"""Drawing primitive tests."""

import numpy as np
import pytest

from repro.data import shapes


def test_blank_canvas():
    canvas = shapes.blank_canvas(8)
    assert canvas.shape == (8, 8)
    assert canvas.dtype == np.float32
    assert np.all(canvas == 0.0)


def test_draw_segment_marks_endpoints():
    canvas = shapes.blank_canvas(16)
    shapes.draw_segment(canvas, (2, 2), (13, 13), thickness=1.0)
    assert canvas[2, 2] > 0.5
    assert canvas[13, 13] > 0.5
    assert canvas[8, 8] > 0.5      # midpoint on the diagonal
    assert canvas[2, 13] == 0.0    # far corner untouched


def test_draw_segment_values_bounded():
    canvas = shapes.blank_canvas(12)
    shapes.draw_segment(canvas, (0, 0), (11, 11), thickness=3.0)
    assert canvas.max() <= 1.0
    assert canvas.min() >= 0.0


def test_degenerate_segment_draws_a_dot():
    canvas = shapes.blank_canvas(10)
    shapes.draw_segment(canvas, (5, 5), (5, 5), thickness=1.0)
    assert canvas[5, 5] > 0.5
    assert canvas[0, 0] == 0.0


def test_draw_polyline_connects_points():
    canvas = shapes.blank_canvas(16)
    shapes.draw_polyline(canvas, [(2, 2), (13, 2), (13, 13)])
    assert canvas[2, 7] > 0.5   # row y=2 horizontal stroke (y first index)
    assert canvas[7, 13] > 0.5  # column x=13 vertical stroke


def test_draw_ellipse_outline_hollow():
    canvas = shapes.blank_canvas(32)
    shapes.draw_ellipse(canvas, (16, 16), (10, 10), thickness=1.0)
    assert canvas[16, 26] > 0.5   # on the boundary
    assert canvas[16, 16] == 0.0  # centre empty


def test_draw_ellipse_filled():
    canvas = shapes.blank_canvas(32)
    shapes.draw_ellipse(canvas, (16, 16), (10, 10), filled=True)
    assert canvas[16, 16] > 0.9
    assert canvas[1, 1] == 0.0


def test_draw_polygon_fills_square():
    canvas = shapes.blank_canvas(16)
    shapes.draw_polygon(canvas, [(4, 4), (12, 4), (12, 12), (4, 12)])
    assert canvas[8, 8] == 1.0
    assert canvas[2, 2] == 0.0
    filled = float(canvas.sum())
    assert 40 <= filled <= 80   # ~8x8 square


def test_checkerboard_alternates():
    board = shapes.checkerboard(8, cell=2)
    assert board[0, 0] != board[0, 2]
    assert board[0, 0] == board[2, 2]
    assert set(np.unique(board)) <= {0.0, 1.0}


def test_stripes_period():
    img = shapes.stripes(8, period=2, horizontal=True)
    assert np.all(img[0] == img[1])
    assert np.all(img[0] != img[2])


def test_radial_gradient_decreases_from_center():
    grad = shapes.radial_gradient(16, (8, 8), radius=8)
    assert grad[8, 8] == 1.0
    assert grad[8, 12] < grad[8, 10]
    assert grad[0, 0] == 0.0


def test_affine_points_identity_centered():
    pts = shapes.affine_points([(0.5, 0.5)], size=28)
    assert pts[0] == pytest.approx((14.0, 14.0))


def test_affine_points_shift():
    base = shapes.affine_points([(0.5, 0.5)], size=28)[0]
    shifted = shapes.affine_points([(0.5, 0.5)], size=28, shift=(3.0, -2.0))[0]
    assert shifted[0] == pytest.approx(base[0] + 3.0)
    assert shifted[1] == pytest.approx(base[1] - 2.0)


def test_affine_points_rotation_preserves_center_distance():
    pts = [(0.5, 0.1)]
    a = shapes.affine_points(pts, 28, rotation=0.0)[0]
    b = shapes.affine_points(pts, 28, rotation=1.0)[0]
    center = shapes.affine_points([(0.5, 0.5)], 28)[0]
    dist = lambda p: np.hypot(p[0] - center[0], p[1] - center[1])
    assert dist(a) == pytest.approx(dist(b), rel=1e-6)
