"""Augmentation utility tests."""

import numpy as np
import pytest

from repro.data import gaussian_noise, random_crop, random_flip
from repro.errors import ConfigurationError


def images(n=6):
    rng = np.random.default_rng(0)
    return rng.random((n, 3, 8, 8)).astype(np.float32)


def test_flip_probability_one_mirrors_all():
    x = images()
    flipped = random_flip(x, np.random.default_rng(1), probability=1.0)
    assert np.array_equal(flipped, x[:, :, :, ::-1])


def test_flip_probability_zero_is_identity():
    x = images()
    same = random_flip(x, np.random.default_rng(1), probability=0.0)
    assert np.array_equal(same, x)


def test_flip_does_not_mutate_input():
    x = images()
    original = x.copy()
    random_flip(x, np.random.default_rng(2), probability=1.0)
    assert np.array_equal(x, original)


def test_flip_invalid_probability():
    with pytest.raises(ConfigurationError):
        random_flip(images(), np.random.default_rng(0), probability=1.5)


def test_crop_preserves_shape():
    x = images()
    cropped = random_crop(x, np.random.default_rng(0), padding=2)
    assert cropped.shape == x.shape


def test_crop_zero_padding_identity():
    x = images()
    assert np.array_equal(random_crop(x, np.random.default_rng(0), padding=0), x)


def test_crop_content_is_shifted_window():
    """Every cropped image must be a translate of the original (with
    zeros entering at the border)."""
    x = np.ones((1, 1, 4, 4), dtype=np.float32)
    out = random_crop(x, np.random.default_rng(3), padding=2)
    # values are only 0 or 1, and some of the original ink remains
    assert set(np.unique(out)) <= {0.0, 1.0}
    assert out.sum() > 0


def test_crop_invalid_padding():
    with pytest.raises(ConfigurationError):
        random_crop(images(), np.random.default_rng(0), padding=-1)


def test_noise_stays_in_unit_range():
    x = images()
    noisy = gaussian_noise(x, np.random.default_rng(0), sigma=0.5)
    assert noisy.min() >= 0.0 and noisy.max() <= 1.0
    assert not np.array_equal(noisy, x)


def test_noise_zero_sigma_identity():
    x = images()
    assert np.allclose(gaussian_noise(x, np.random.default_rng(0), sigma=0.0), x)


def test_noise_invalid_sigma():
    with pytest.raises(ConfigurationError):
        gaussian_noise(images(), np.random.default_rng(0), sigma=-0.1)
