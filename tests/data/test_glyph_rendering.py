"""Deeper glyph / svhn / cifar rendering tests."""

import numpy as np
import pytest

from repro.data.glyphs import render_digit
from repro.data.synth_cifar import _DRAWERS, _render_cifar_sample
from repro.data.synth_svhn import _render_svhn_sample, _textured_background


def test_render_digit_jitter_varies_samples():
    rng = np.random.default_rng(0)
    a = render_digit(3, 28, rng)
    b = render_digit(3, 28, rng)
    assert not np.array_equal(a, b)


def test_render_digit_stays_on_canvas():
    """With default jitter the glyph must not clip off the canvas
    entirely: the border rows should carry far less ink than the
    middle."""
    rng = np.random.default_rng(1)
    for digit in range(10):
        canvas = render_digit(digit, 28, rng)
        border = canvas[0].sum() + canvas[-1].sum()
        middle = canvas[10:18].sum()
        assert middle > border, f"digit {digit} rendered mostly off-canvas"


def test_render_digit_scales_with_size():
    rng = np.random.default_rng(2)
    small = render_digit(0, 16, rng)
    large = render_digit(0, 64, rng)
    assert small.shape == (16, 16)
    assert large.shape == (64, 64)
    assert large.sum() > small.sum()


def test_svhn_background_textured():
    rng = np.random.default_rng(0)
    background = _textured_background(32, rng)
    assert background.shape == (3, 32, 32)
    assert background.std() > 0.01, "background should not be flat"
    assert 0.0 <= background.min() and background.max() <= 1.0


def test_svhn_sample_in_range_and_colored():
    rng = np.random.default_rng(1)
    image = _render_svhn_sample(5, 32, rng, distractors=True)
    assert image.shape == (3, 32, 32)
    assert 0.0 <= image.min() and image.max() <= 1.0
    # channels should differ (colour, not grayscale)
    assert not np.allclose(image[0], image[1], atol=1e-3)


def test_svhn_distractors_add_ink():
    rng_a = np.random.default_rng(7)
    rng_b = np.random.default_rng(7)
    with_d = _render_svhn_sample(1, 32, rng_a, distractors=True)
    without = _render_svhn_sample(1, 32, rng_b, distractors=False)
    assert with_d.shape == without.shape


@pytest.mark.parametrize("cls", sorted(_DRAWERS))
def test_cifar_drawers_produce_ink(cls):
    rng = np.random.default_rng(cls)
    image = _render_cifar_sample(cls, 32, rng)
    assert image.shape == (3, 32, 32)
    assert 0.0 <= image.min() and image.max() <= 1.0
    assert image.std() > 0.02


def test_cifar_classes_structurally_distinct():
    """Means over many samples of different classes must differ in the
    luminance channel (structure defines the class)."""
    rng = np.random.default_rng(3)
    means = []
    for cls in range(10):
        stack = np.stack([
            _render_cifar_sample(cls, 32, rng).mean(axis=0) for _ in range(6)
        ])
        means.append(stack.mean(axis=0))
    distinct_pairs = 0
    for i in range(10):
        for j in range(i + 1, 10):
            if np.abs(means[i] - means[j]).mean() > 0.01:
                distinct_pairs += 1
    assert distinct_pairs >= 40  # out of 45 pairs
