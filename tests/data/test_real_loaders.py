"""Real-dataset loader tests against synthesized fixture files.

We generate byte-exact IDX and CIFAR-pickle files, then check the
loaders round-trip them — so the loaders are fully tested without the
actual datasets (unavailable offline).
"""

import gzip
import os
import pickle
import struct

import numpy as np
import pytest

from repro.data.real import (
    CIFAR10_CLASS_NAMES,
    load_cifar10,
    load_mnist,
    load_mnist_idx,
    read_idx,
)
from repro.errors import ConfigurationError


def write_idx_images(path, images: np.ndarray, compress=False):
    n, h, w = images.shape
    payload = struct.pack(">4B", 0, 0, 0x08, 3)
    payload += struct.pack(">3I", n, h, w)
    payload += images.astype(np.uint8).tobytes()
    opener = gzip.open if compress else open
    with opener(path, "wb") as handle:
        handle.write(payload)


def write_idx_labels(path, labels: np.ndarray, compress=False):
    payload = struct.pack(">4B", 0, 0, 0x08, 1)
    payload += struct.pack(">I", labels.size)
    payload += labels.astype(np.uint8).tobytes()
    opener = gzip.open if compress else open
    with opener(path, "wb") as handle:
        handle.write(payload)


@pytest.fixture
def mnist_dir(tmp_path):
    rng = np.random.default_rng(0)
    directory = str(tmp_path)
    train_images = rng.integers(0, 256, size=(20, 28, 28), dtype=np.uint8)
    train_labels = rng.integers(0, 10, size=20, dtype=np.uint8)
    test_images = rng.integers(0, 256, size=(10, 28, 28), dtype=np.uint8)
    test_labels = rng.integers(0, 10, size=10, dtype=np.uint8)
    write_idx_images(os.path.join(directory, "train-images-idx3-ubyte"), train_images)
    write_idx_labels(os.path.join(directory, "train-labels-idx1-ubyte"), train_labels)
    # test split gzip-compressed, to exercise both paths
    write_idx_images(
        os.path.join(directory, "t10k-images-idx3-ubyte.gz"), test_images, compress=True
    )
    write_idx_labels(
        os.path.join(directory, "t10k-labels-idx1-ubyte.gz"), test_labels, compress=True
    )
    return directory, train_images, train_labels


def test_read_idx_roundtrip(tmp_path):
    rng = np.random.default_rng(1)
    images = rng.integers(0, 256, size=(5, 4, 4), dtype=np.uint8)
    path = str(tmp_path / "x.idx")
    write_idx_images(path, images)
    assert np.array_equal(read_idx(path), images)


def test_read_idx_gzip(tmp_path):
    rng = np.random.default_rng(2)
    labels = rng.integers(0, 10, size=7, dtype=np.uint8)
    path = str(tmp_path / "y.idx.gz")
    write_idx_labels(path, labels, compress=True)
    assert np.array_equal(read_idx(path), labels)


def test_read_idx_bad_magic(tmp_path):
    path = str(tmp_path / "bad.idx")
    with open(path, "wb") as handle:
        handle.write(b"\x01\x02\x03\x04more")
    with pytest.raises(ConfigurationError):
        read_idx(path)


def test_read_idx_truncated_payload(tmp_path):
    path = str(tmp_path / "short.idx")
    with open(path, "wb") as handle:
        handle.write(struct.pack(">4B", 0, 0, 0x08, 1))
        handle.write(struct.pack(">I", 100))
        handle.write(b"\x00" * 10)  # promises 100, delivers 10
    with pytest.raises(ConfigurationError):
        read_idx(path)


def test_load_mnist_idx_scaling(mnist_dir):
    directory, train_images, train_labels = mnist_dir
    ds = load_mnist_idx(
        os.path.join(directory, "train-images-idx3-ubyte"),
        os.path.join(directory, "train-labels-idx1-ubyte"),
    )
    assert ds.images.shape == (20, 1, 28, 28)
    assert ds.images.max() <= 1.0 and ds.images.min() >= 0.0
    assert np.array_equal(ds.labels, train_labels)
    # exact pixel scaling
    assert np.allclose(ds.images[0, 0], train_images[0] / 255.0)


def test_load_mnist_directory(mnist_dir):
    directory, _, _ = mnist_dir
    train, test = load_mnist(directory)
    assert len(train) == 20
    assert len(test) == 10
    assert train.class_names == [str(d) for d in range(10)]


def test_load_mnist_missing_file(tmp_path):
    with pytest.raises(ConfigurationError):
        load_mnist(str(tmp_path))


def test_load_mnist_count_mismatch(tmp_path):
    rng = np.random.default_rng(3)
    images_path = str(tmp_path / "imgs.idx")
    labels_path = str(tmp_path / "lbls.idx")
    write_idx_images(images_path, rng.integers(0, 255, (4, 28, 28), dtype=np.uint8))
    write_idx_labels(labels_path, rng.integers(0, 10, 5, dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        load_mnist_idx(images_path, labels_path)


@pytest.fixture
def cifar_dir(tmp_path):
    rng = np.random.default_rng(4)
    directory = str(tmp_path)
    for index in range(1, 6):
        batch = {
            b"data": rng.integers(0, 256, size=(8, 3072), dtype=np.uint8),
            b"labels": rng.integers(0, 10, size=8).tolist(),
        }
        with open(os.path.join(directory, f"data_batch_{index}"), "wb") as handle:
            pickle.dump(batch, handle)
    test_batch = {
        b"data": rng.integers(0, 256, size=(6, 3072), dtype=np.uint8),
        b"labels": rng.integers(0, 10, size=6).tolist(),
    }
    with open(os.path.join(directory, "test_batch"), "wb") as handle:
        pickle.dump(test_batch, handle)
    return directory


def test_load_cifar10(cifar_dir):
    train, test = load_cifar10(cifar_dir)
    assert train.images.shape == (40, 3, 32, 32)
    assert test.images.shape == (6, 3, 32, 32)
    assert train.class_names == CIFAR10_CLASS_NAMES
    assert train.images.max() <= 1.0


def test_load_cifar10_missing_batch(tmp_path):
    with pytest.raises(ConfigurationError):
        load_cifar10(str(tmp_path))


def test_load_cifar10_bad_pickle(tmp_path):
    directory = str(tmp_path)
    for index in range(1, 6):
        with open(os.path.join(directory, f"data_batch_{index}"), "wb") as handle:
            pickle.dump({b"wrong": 1}, handle)
    with open(os.path.join(directory, "test_batch"), "wb") as handle:
        pickle.dump({b"wrong": 1}, handle)
    with pytest.raises(ConfigurationError):
        load_cifar10(directory)
