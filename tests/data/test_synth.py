"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.data import (
    load_dataset,
    synthetic_cifar,
    synthetic_digits,
    synthetic_svhn,
)
from repro.data.glyphs import DIGIT_STROKES, render_digit
from repro.errors import ConfigurationError


def test_digits_shapes_and_range():
    train, test = synthetic_digits(n_train=50, n_test=20, seed=0)
    assert train.images.shape == (50, 1, 28, 28)
    assert test.images.shape == (20, 1, 28, 28)
    assert train.images.min() >= 0.0 and train.images.max() <= 1.0
    assert train.num_classes == 10


def test_svhn_shapes():
    train, test = synthetic_svhn(n_train=30, n_test=20, seed=0)
    assert train.images.shape == (30, 3, 32, 32)
    assert train.images.min() >= 0.0 and train.images.max() <= 1.0


def test_cifar_shapes():
    train, test = synthetic_cifar(n_train=30, n_test=20, seed=0)
    assert train.images.shape == (30, 3, 32, 32)
    assert len(train.class_names) == 10


@pytest.mark.parametrize("builder", [synthetic_digits, synthetic_svhn, synthetic_cifar])
def test_generators_deterministic(builder):
    a_train, _ = builder(n_train=20, n_test=10, seed=5)
    b_train, _ = builder(n_train=20, n_test=10, seed=5)
    assert np.array_equal(a_train.images, b_train.images)
    assert np.array_equal(a_train.labels, b_train.labels)


@pytest.mark.parametrize("builder", [synthetic_digits, synthetic_svhn, synthetic_cifar])
def test_generators_seed_sensitive(builder):
    a_train, _ = builder(n_train=20, n_test=10, seed=1)
    b_train, _ = builder(n_train=20, n_test=10, seed=2)
    assert not np.array_equal(a_train.images, b_train.images)


def test_class_balance():
    train, _ = synthetic_digits(n_train=100, n_test=10, seed=0)
    assert np.array_equal(train.class_counts(), [10] * 10)


def test_minimum_sample_count_enforced():
    with pytest.raises(ConfigurationError):
        synthetic_digits(n_train=5, n_test=20)


def test_every_digit_has_strokes():
    assert sorted(DIGIT_STROKES) == list(range(10))
    for strokes in DIGIT_STROKES.values():
        assert strokes, "every digit needs at least one stroke"


def test_render_digit_produces_ink():
    rng = np.random.default_rng(0)
    for digit in range(10):
        canvas = render_digit(digit, 28, rng)
        assert canvas.sum() > 10.0, f"digit {digit} rendered empty"
        assert canvas.max() <= 1.0


def test_digit_classes_are_distinct():
    """Average images of different digits must differ substantially."""
    rng = np.random.default_rng(0)
    means = []
    for digit in range(10):
        stack = np.stack([render_digit(digit, 28, rng) for _ in range(8)])
        means.append(stack.mean(axis=0))
    for i in range(10):
        for j in range(i + 1, 10):
            diff = float(np.abs(means[i] - means[j]).mean())
            assert diff > 0.02, f"digits {i} and {j} look identical"


def test_load_dataset_split_protocol():
    split = load_dataset("digits", n_train=100, n_test=100, seed=0)
    # paper: 10% of each test class becomes validation
    assert len(split.val) == 10
    assert len(split.test) == 90
    assert np.array_equal(split.val.class_counts(), [1] * 10)


def test_load_dataset_normalization():
    split = load_dataset("digits", n_train=50, n_test=20, seed=0)
    assert split.train.images.min() >= -1.0
    assert split.train.images.min() < 0.0  # actually centred
    raw = load_dataset("digits", n_train=50, n_test=20, seed=0, normalize=False)
    assert raw.train.images.min() >= 0.0


def test_load_dataset_unknown_name():
    with pytest.raises(ConfigurationError):
        load_dataset("imagenet")
