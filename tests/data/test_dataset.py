"""Dataset container, split and batching tests."""

import numpy as np
import pytest

from repro.data import Dataset, batches, stratified_split
from repro.errors import ConfigurationError, ShapeError


def make_dataset(n=30, classes=3):
    rng = np.random.default_rng(0)
    return Dataset(
        images=rng.random((n, 1, 4, 4)).astype(np.float32),
        labels=np.arange(n) % classes,
        class_names=[f"c{i}" for i in range(classes)],
        name="test",
    )


def test_dataset_basic_properties():
    ds = make_dataset()
    assert len(ds) == 30
    assert ds.num_classes == 3
    assert ds.image_shape == (1, 4, 4)
    assert np.array_equal(ds.class_counts(), [10, 10, 10])


def test_dataset_validation():
    with pytest.raises(ShapeError):
        Dataset(np.zeros((2, 4, 4)), np.zeros(2), ["a"])     # not NCHW
    with pytest.raises(ShapeError):
        Dataset(np.zeros((2, 1, 4, 4)), np.zeros(3), ["a"])  # label count
    with pytest.raises(ShapeError):
        Dataset(np.zeros((2, 1, 4, 4)), np.array([0, 5]), ["a"])  # label range


def test_subset_preserves_metadata():
    ds = make_dataset()
    sub = ds.subset(np.array([0, 1, 2]))
    assert len(sub) == 3
    assert sub.class_names == ds.class_names


def test_stratified_split_balanced():
    ds = make_dataset(n=100, classes=4)
    rng = np.random.default_rng(1)
    kept, held = stratified_split(ds, 0.2, rng)
    assert len(held) == 20
    assert len(kept) == 80
    assert np.array_equal(held.class_counts(), [5, 5, 5, 5])
    # no overlap and full coverage
    assert len(kept) + len(held) == len(ds)


def test_stratified_split_validation():
    ds = make_dataset()
    with pytest.raises(ConfigurationError):
        stratified_split(ds, 0.0, np.random.default_rng(0))
    with pytest.raises(ConfigurationError):
        stratified_split(ds, 1.0, np.random.default_rng(0))


def test_batches_cover_dataset():
    ds = make_dataset(n=25)
    seen = 0
    for images, labels in batches(ds, batch_size=8):
        assert images.shape[0] == labels.shape[0]
        seen += images.shape[0]
    assert seen == 25


def test_batches_shuffled_with_rng():
    ds = make_dataset(n=20)
    first = np.concatenate([y for _, y in batches(ds, 5, np.random.default_rng(0))])
    plain = np.concatenate([y for _, y in batches(ds, 5)])
    assert not np.array_equal(first, plain)
    assert sorted(first.tolist()) == sorted(plain.tolist())


def test_batches_invalid_size():
    with pytest.raises(ConfigurationError):
        list(batches(make_dataset(), 0))
