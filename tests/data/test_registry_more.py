"""Dataset registry coverage: all three tasks through the split protocol."""

import numpy as np
import pytest

from repro.data import DATASET_BUILDERS, load_dataset


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_full_split_protocol(name):
    split = load_dataset(name, n_train=100, n_test=100, seed=3)
    assert len(split.train) == 100
    assert len(split.val) == 10     # 10% of each test class
    assert len(split.test) == 90
    assert split.num_classes == 10
    assert split.name == name


@pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
def test_val_test_disjoint_from_train(name):
    """Train and test pools are generated independently; no image may
    appear in both (a leak would inflate every accuracy column)."""
    split = load_dataset(name, n_train=60, n_test=60, seed=4)
    train_hashes = {img.tobytes() for img in split.train.images}
    for img in np.concatenate([split.val.images, split.test.images]):
        assert img.tobytes() not in train_hashes


def test_split_deterministic():
    a = load_dataset("digits", n_train=50, n_test=50, seed=9)
    b = load_dataset("digits", n_train=50, n_test=50, seed=9)
    assert np.array_equal(a.val.images, b.val.images)
    assert np.array_equal(a.test.labels, b.test.labels)


def test_image_shapes_match_paper_networks():
    assert load_dataset("digits", 50, 50).image_shape == (1, 28, 28)
    assert load_dataset("svhn", 50, 50).image_shape == (3, 32, 32)
    assert load_dataset("cifar", 50, 50).image_shape == (3, 32, 32)
