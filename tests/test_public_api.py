"""Public API surface checks: every exported name resolves."""

import importlib

import pytest

import repro

PACKAGES = ["repro", "repro.nn", "repro.core", "repro.data", "repro.hw",
            "repro.zoo", "repro.experiments", "repro.serve", "repro.obs",
            "repro.parallel", "repro.resilience", "repro.registry"]


def test_version_exposed():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__) > 80, (
        f"{package_name} needs real documentation"
    )


def test_no_accidental_private_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            if name == "__version__":
                continue  # the one intentional dunder export
            assert not name.startswith("_"), f"{package_name} exports {name}"
