"""Public API surface checks: every exported name resolves."""

import importlib

import pytest

import repro

PACKAGES = ["repro", "repro.nn", "repro.core", "repro.data", "repro.hw",
            "repro.zoo", "repro.experiments", "repro.serve", "repro.obs",
            "repro.parallel", "repro.resilience", "repro.registry",
            "repro.kernels", "repro.backends", "repro.control"]


def test_version_exposed():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must declare __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_docstrings(package_name):
    package = importlib.import_module(package_name)
    assert package.__doc__ and len(package.__doc__) > 80, (
        f"{package_name} needs real documentation"
    )


def test_backend_surface_locked():
    """The backend-dispatch API the redesign introduced stays put."""
    from repro import backends, kernels
    from repro.core import QuantizedNetwork

    for name in ("Backend", "available", "get", "get_default", "register",
                 "resolve", "set_default", "using_backend", "compile_units"):
        assert name in backends.__all__, f"repro.backends.{name} unlisted"
    for name in ("Workspace", "fused_dense", "fused_conv2d", "fused_maxpool",
                 "fused_avgpool", "fused_quantize", "fused_relu_quantize"):
        assert name in kernels.__all__, f"repro.kernels.{name} unlisted"
    assert set(backends.available()) >= {"reference", "fused"}
    # the single public inference entry point with per-call backend choice
    assert callable(QuantizedNetwork.infer)
    import inspect

    parameters = inspect.signature(QuantizedNetwork.infer).parameters
    assert "backend" in parameters and "batch_size" in parameters
    assert "backend" in inspect.signature(QuantizedNetwork.freeze).parameters


def test_no_accidental_private_exports():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            if name == "__version__":
                continue  # the one intentional dunder export
            assert not name.startswith("_"), f"{package_name} exports {name}"
