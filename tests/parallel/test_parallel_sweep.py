"""End-to-end parallel sweep: parity, determinism, cache semantics."""

import functools

import pytest

from repro.core.precision import get_precision
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.obs.metrics import get_metrics
from repro.parallel import SweepCache
from tests.conftest import make_tiny_cnn

SPECS = ["float32", "fixed8", "binary"]


def tiny_config(**overrides):
    defaults = dict(float_epochs=1, qat_epochs=1, batch_size=16, seed=0)
    defaults.update(overrides)
    return SweepConfig(**defaults)


@pytest.fixture(scope="module")
def split():
    return load_dataset("digits", n_train=80, n_test=60, seed=0)


def make_sweep(split, **config_overrides):
    return PrecisionSweep(
        functools.partial(make_tiny_cnn, 5), split, tiny_config(**config_overrides)
    )


@pytest.fixture(scope="module")
def sequential_results(split):
    """The legacy in-process path: run_precision per spec, no cache."""
    sweep = make_sweep(split)
    return [sweep.run_precision(get_precision(key)) for key in SPECS]


def assert_identical(results, reference):
    assert len(results) == len(reference)
    for got, want in zip(results, reference):
        assert got.spec is want.spec
        assert got.accuracy == want.accuracy          # bitwise
        assert got.converged == want.converged
        assert got.history == want.history            # exact float lists


# -- parity -------------------------------------------------------------

def test_run_default_matches_legacy_loop(split, sequential_results):
    assert_identical(make_sweep(split).run(SPECS), sequential_results)


def test_workers_one_with_cache_matches_legacy(
    split, sequential_results, tmp_path
):
    cache = SweepCache(str(tmp_path))
    results = make_sweep(split).run(SPECS, workers=1, cache=cache)
    assert_identical(results, sequential_results)
    assert cache.misses >= len(SPECS) and cache.hits == 0


def test_two_workers_bitwise_identical(split, sequential_results, tmp_path):
    results = make_sweep(split).run(
        SPECS, workers=2, cache=str(tmp_path / "c")
    )
    assert_identical(results, sequential_results)


def test_order_independence(split, sequential_results):
    shuffled = ["binary", "float32", "fixed8"]
    results = {r.spec.key: r for r in make_sweep(split).run(shuffled)}
    for want in sequential_results:
        got = results[want.spec.key]
        assert got.accuracy == want.accuracy
        assert got.history == want.history


# -- cache semantics ----------------------------------------------------

def test_second_run_is_served_from_cache(split, sequential_results, tmp_path):
    cache = SweepCache(str(tmp_path))
    make_sweep(split).run(SPECS, workers=2, cache=cache)
    warm = SweepCache(str(tmp_path))
    results = make_sweep(split).run(SPECS, workers=2, cache=warm)
    assert_identical(results, sequential_results)
    assert warm.hits == len(SPECS) and warm.misses == 0
    assert warm.hit_rate == 1.0


def test_refresh_retrains_and_overwrites(split, tmp_path):
    cache = SweepCache(str(tmp_path))
    first = make_sweep(split).run(SPECS, cache=cache)
    refreshed_cache = SweepCache(str(tmp_path))
    refreshed = make_sweep(split).run(
        SPECS, cache=refreshed_cache, refresh=True
    )
    assert refreshed_cache.hits == 0  # no lookups served
    assert_identical(refreshed, first)
    # and the refreshed entries are still readable afterwards
    warm = SweepCache(str(tmp_path))
    assert_identical(make_sweep(split).run(SPECS, cache=warm), first)
    assert warm.hits == len(SPECS)


def test_config_change_invalidates_cache(split, tmp_path):
    cache = SweepCache(str(tmp_path))
    make_sweep(split).run(SPECS, cache=cache)
    other = SweepCache(str(tmp_path))
    make_sweep(split, qat_lr=0.001).run(SPECS, cache=other)
    assert other.hits == 0  # different hyperparams -> different keys


def test_corrupt_entry_is_retrained(split, sequential_results, tmp_path):
    cache = SweepCache(str(tmp_path))
    make_sweep(split).run(SPECS, cache=cache)
    # corrupt the fixed8 entry on disk
    from repro.nn.serialization import state_digest
    from repro.parallel.cache import config_fingerprint, split_fingerprint
    key = cache.point_key(
        state_digest(make_tiny_cnn(5)),
        "fixed8",
        split_fingerprint(split),
        config_fingerprint(tiny_config()),
    )
    path = cache._path(key, ".json")
    with open(path, "w") as handle:
        handle.write("garbage")
    warm = SweepCache(str(tmp_path))
    results = make_sweep(split).run(SPECS, cache=warm)
    assert_identical(results, sequential_results)
    assert warm.misses == 1 and warm.hits == len(SPECS) - 1


# -- graceful degradation ----------------------------------------------

def test_unpicklable_builder_falls_back_sequentially(
    split, sequential_results
):
    sweep = PrecisionSweep(lambda: make_tiny_cnn(5), split, tiny_config())
    with pytest.warns(RuntimeWarning, match="not picklable"):
        results = sweep.run(SPECS, workers=2)
    assert_identical(results, sequential_results)


def test_cache_hit_miss_counters_feed_metrics(split, tmp_path):
    metrics = get_metrics()
    before_miss = metrics.counter("parallel.cache.misses").value
    before_hit = metrics.counter("parallel.cache.hits").value
    make_sweep(split).run(SPECS, cache=str(tmp_path))
    make_sweep(split).run(SPECS, cache=str(tmp_path))
    assert metrics.counter("parallel.cache.misses").value == before_miss + 3
    assert metrics.counter("parallel.cache.hits").value == before_hit + 3
