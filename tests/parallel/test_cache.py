"""Sweep cache: key recipe, hit/miss/refresh semantics, corruption."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.precision import get_precision
from repro.core.sweep import PrecisionResult, SweepConfig
from repro.data import load_dataset
from repro.nn.serialization import state_digest
from repro.parallel.cache import (
    SweepCache,
    config_fingerprint,
    default_cache_dir,
    split_fingerprint,
)
from tests.conftest import make_tiny_cnn


@pytest.fixture()
def cache(tmp_path):
    return SweepCache(str(tmp_path / "sweep-cache"))


def make_result(key="fixed8", accuracy=0.8125):
    return PrecisionResult(
        spec=get_precision(key),
        accuracy=accuracy,
        converged=True,
        history={"val_accuracy": [0.5, 0.75, accuracy]},
    )


# -- key recipe --------------------------------------------------------

def test_point_key_is_stable(cache):
    key = cache.point_key("digest", "fixed8", "split", "config")
    assert key == cache.point_key("digest", "fixed8", "split", "config")
    assert key != cache.point_key("digest", "fixed4", "split", "config")
    assert key != cache.point_key("other", "fixed8", "split", "config")
    assert key != cache.point_key("digest", "fixed8", "other", "config")
    assert key != cache.point_key("digest", "fixed8", "split", "other")


def test_split_fingerprint_tracks_content():
    split_a = load_dataset("digits", n_train=40, n_test=30, seed=0)
    split_b = load_dataset("digits", n_train=40, n_test=30, seed=0)
    split_c = load_dataset("digits", n_train=40, n_test=30, seed=1)
    assert split_fingerprint(split_a) == split_fingerprint(split_b)
    assert split_fingerprint(split_a) != split_fingerprint(split_c)


def test_config_fingerprint_tracks_hyperparams():
    base = SweepConfig()
    assert config_fingerprint(base) == config_fingerprint(SweepConfig())
    assert config_fingerprint(base) != config_fingerprint(SweepConfig(seed=9))
    assert config_fingerprint(base) != config_fingerprint(
        SweepConfig(qat_lr=0.001)
    )


def test_key_recipe_stable_across_processes(tmp_path):
    """The full key recipe must reproduce bit-for-bit in a new process."""
    script = (
        "from repro.core.sweep import SweepConfig\n"
        "from repro.data import load_dataset\n"
        "from repro.nn.serialization import state_digest\n"
        "from repro.parallel.cache import (SweepCache, config_fingerprint,\n"
        "                                  split_fingerprint)\n"
        "from repro.zoo import build_network\n"
        "split = load_dataset('digits', n_train=40, n_test=30, seed=0)\n"
        "cache = SweepCache('unused')\n"
        "print(cache.point_key(state_digest(build_network('lenet_small', 0)),\n"
        "                      'fixed8', split_fingerprint(split),\n"
        "                      config_fingerprint(SweepConfig())))\n"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    child = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, check=True,
    )
    from repro.zoo import build_network
    split = load_dataset("digits", n_train=40, n_test=30, seed=0)
    expected = SweepCache("unused").point_key(
        state_digest(build_network("lenet_small", 0)),
        "fixed8",
        split_fingerprint(split),
        config_fingerprint(SweepConfig()),
    )
    assert child.stdout.strip() == expected


# -- hit / miss / refresh ----------------------------------------------

def test_get_miss_then_hit_roundtrip(cache):
    key = cache.point_key("d", "fixed8", "s", "c")
    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)

    stored = make_result()
    cache.put(key, stored)
    loaded = cache.get(key)
    assert (cache.hits, cache.misses) == (1, 1)
    assert loaded == stored  # bitwise: spec, accuracy, converged, history
    assert loaded.spec is stored.spec  # canonical registry instance
    assert cache.hit_rate == pytest.approx(0.5)


def test_put_overwrites(cache):
    key = cache.point_key("d", "fixed8", "s", "c")
    cache.put(key, make_result(accuracy=0.25))
    cache.put(key, make_result(accuracy=0.75))
    assert cache.get(key).accuracy == 0.75


def test_novel_spec_key_roundtrips(cache):
    key = cache.point_key("d", "fixed:4:8", "s", "c")
    result = PrecisionResult(
        spec=get_precision("fixed8").parse("fixed:4:8"),
        accuracy=0.5,
        converged=True,
    )
    cache.put(key, result)
    assert cache.get(key) == result


# -- corruption recovery -----------------------------------------------

def test_corrupt_json_is_a_miss_and_removed(cache, caplog):
    key = cache.point_key("d", "fixed8", "s", "c")
    path = cache.put(key, make_result())
    with open(path, "w") as handle:
        handle.write("{not json at all")
    with caplog.at_level("WARNING", logger="repro.parallel.cache"):
        assert cache.get(key) is None
    assert "corrupt" in caplog.text
    assert not os.path.exists(path)
    # the sweep can then re-train and re-store the point
    cache.put(key, make_result())
    assert cache.get(key) is not None


def test_schema_mismatch_is_a_miss(cache, caplog):
    key = cache.point_key("d", "fixed8", "s", "c")
    path = cache.put(key, make_result())
    with open(path) as handle:
        payload = json.load(handle)
    payload["schema"] = 999
    with open(path, "w") as handle:
        json.dump(payload, handle)
    with caplog.at_level("WARNING", logger="repro.parallel.cache"):
        assert cache.get(key) is None
    assert not os.path.exists(path)


def test_missing_fields_are_a_miss(cache, caplog):
    key = cache.point_key("d", "fixed8", "s", "c")
    path = cache.put(key, make_result())
    with open(path, "w") as handle:
        json.dump({"schema": 1}, handle)
    with caplog.at_level("WARNING", logger="repro.parallel.cache"):
        assert cache.get(key) is None


# -- weight states ------------------------------------------------------

def test_state_roundtrip(cache):
    network = make_tiny_cnn(seed=3)
    from repro.nn.serialization import network_state
    state = network_state(network)
    key = cache.point_key("d", "float32", "s", "c")
    assert cache.get_state(key) is None
    cache.put_state(key, state)
    loaded = cache.get_state(key)
    assert sorted(loaded) == sorted(state)
    for name in state:
        assert np.array_equal(loaded[name], state[name])


def test_corrupt_state_is_dropped(cache, caplog):
    key = cache.point_key("d", "float32", "s", "c")
    path = cache.put_state(key, {"w": np.ones(3, dtype=np.float32)})
    with open(path, "wb") as handle:
        handle.write(b"junk")
    with caplog.at_level("WARNING", logger="repro.parallel.cache"):
        assert cache.get_state(key) is None
    assert not os.path.exists(path)


# -- maintenance --------------------------------------------------------

def test_clear_removes_everything(cache):
    for spec_key in ("fixed8", "fixed4"):
        cache.put(cache.point_key("d", spec_key, "s", "c"), make_result())
    cache.put_state(
        cache.point_key("d", "float32", "s", "c"),
        {"w": np.zeros(2, dtype=np.float32)},
    )
    assert cache.clear() == 3
    assert cache.get(cache.point_key("d", "fixed8", "s", "c")) is None


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "custom"))
    assert default_cache_dir() == str(tmp_path / "custom")
    monkeypatch.delenv("REPRO_SWEEP_CACHE")
    assert default_cache_dir().endswith(os.path.join(".cache", "repro-sweeps"))


# -- salted keys (search-space isolation) -------------------------------

def test_empty_salt_keys_match_pre_salt_layout(tmp_path):
    plain = SweepCache(str(tmp_path))
    explicit = SweepCache(str(tmp_path), salt="")
    args = ("digest", "fixed8", "split", "config")
    assert plain.point_key(*args) == explicit.point_key(*args)


def test_salt_partitions_the_key_space(tmp_path):
    args = ("digest", "fixed8", "split", "config")
    base = SweepCache(str(tmp_path)).point_key(*args)
    salted = SweepCache(str(tmp_path), salt="space-a").point_key(*args)
    other = SweepCache(str(tmp_path), salt="space-b").point_key(*args)
    assert len({base, salted, other}) == 3


def test_salted_caches_do_not_see_each_others_entries(tmp_path):
    spec = get_precision("fixed8")
    result = PrecisionResult(spec=spec, accuracy=0.5, converged=True)
    a = SweepCache(str(tmp_path), salt="space-a")
    b = SweepCache(str(tmp_path), salt="space-b")
    args = ("digest", spec.key, "split", "config")
    a.put(a.point_key(*args), result)
    assert a.get(a.point_key(*args)) is not None
    assert b.get(b.point_key(*args)) is None
