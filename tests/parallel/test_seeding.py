"""Deterministic seed derivation tests."""

import numpy as np

from repro.parallel.seeding import derive_seed, generator_for


def test_same_inputs_same_seed():
    assert derive_seed(0, "qat", "fixed8") == derive_seed(0, "qat", "fixed8")


def test_distinct_components_distinct_seeds():
    seeds = {
        derive_seed(0, "qat", "fixed8"),
        derive_seed(0, "qat", "fixed4"),
        derive_seed(0, "float"),
        derive_seed(1, "qat", "fixed8"),
        derive_seed(0, "qat", "fixed8", "extra"),
    }
    assert len(seeds) == 5


def test_component_boundaries_matter():
    """("ab", "c") and ("a", "bc") must not collide."""
    assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


def test_independent_of_global_numpy_state():
    np.random.seed(12345)
    first = derive_seed(7, "qat", "binary")
    np.random.seed(99999)
    np.random.random(100)
    assert derive_seed(7, "qat", "binary") == first


def test_generator_for_reproduces_stream():
    a = generator_for(3, "qat", "pow2").random(8)
    b = generator_for(3, "qat", "pow2").random(8)
    assert np.array_equal(a, b)
    c = generator_for(3, "qat", "binary").random(8)
    assert not np.array_equal(a, c)


def test_seed_fits_in_uint64():
    for seed in (0, 1, 2**31, 12345678901234):
        derived = derive_seed(seed, "role")
        assert 0 <= derived < 2**64
        np.random.default_rng(derived)  # must be a valid numpy seed
