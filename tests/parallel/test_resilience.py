"""Sweep resilience: pool rebuilds, point retries, cache fault recovery."""

import functools
import os

import pytest

from repro.core.precision import get_precision
from repro.core.sweep import PrecisionResult, PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.errors import FaultInjectedError, TrainingError
from repro.obs.metrics import get_metrics
from repro.parallel import SweepCache, run_sweep
from repro.resilience import FaultInjector, RetryPolicy, use_injector
from tests.conftest import make_tiny_cnn


def tiny_config(**overrides):
    defaults = dict(float_epochs=1, qat_epochs=1, batch_size=16, seed=0)
    defaults.update(overrides)
    return SweepConfig(**defaults)


@pytest.fixture(scope="module")
def split():
    return load_dataset("digits", n_train=80, n_test=60, seed=0)


def make_sweep(split):
    return PrecisionSweep(
        functools.partial(make_tiny_cnn, 5), split, tiny_config()
    )


FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, max_delay_s=0.0)


# -- worker-process death (BrokenProcessPool) ---------------------------

def crash_once_builder(sentinel_path, parent_pid, n_classes):
    """Builder that kills the first *worker* process that calls it.

    ``os._exit`` skips all cleanup, exactly like an OOM kill, which is
    what turns the pool's pending futures into BrokenProcessPool.  The
    parent (baseline training, digests) is never crashed, and the
    sentinel file makes the crash happen exactly once per test.
    """
    if os.getpid() != parent_pid and not os.path.exists(sentinel_path):
        with open(sentinel_path, "w") as handle:
            handle.write(str(os.getpid()))
        os._exit(3)
    return make_tiny_cnn(n_classes)


def test_broken_pool_is_rebuilt_and_points_resubmitted(split, tmp_path):
    sentinel = str(tmp_path / "crashed-once")
    sweep = PrecisionSweep(
        functools.partial(crash_once_builder, sentinel, os.getpid(), 5),
        split,
        tiny_config(),
    )
    rebuilds = get_metrics().counter("parallel.pool_rebuilds")
    before = rebuilds.value
    with pytest.warns(RuntimeWarning, match="rebuilding pool"):
        results = run_sweep(
            sweep, ["fixed8", "binary"], workers=2, retry=FAST_RETRY
        )
    assert os.path.exists(sentinel)  # a worker really died
    assert rebuilds.value > before
    assert [r.spec.key for r in results] == ["fixed8", "binary"]
    # resubmitted points are bitwise identical to an undisturbed run
    reference = PrecisionSweep(
        functools.partial(make_tiny_cnn, 5), split, tiny_config()
    )
    for result in results:
        want = reference.run_precision(result.spec)
        assert result.accuracy == want.accuracy
        assert result.history == want.history


def crash_always_builder(parent_pid, n_classes):
    """Builder that kills every worker process that ever calls it."""
    if os.getpid() != parent_pid:
        os._exit(3)
    return make_tiny_cnn(n_classes)


def test_workers_that_keep_dying_exhaust_the_policy(split):
    sweep = PrecisionSweep(
        functools.partial(crash_always_builder, os.getpid(), 5),
        split,
        tiny_config(),
    )
    with pytest.warns(RuntimeWarning):
        with pytest.raises(TrainingError, match="still failing"):
            run_sweep(
                sweep,
                ["fixed8", "binary"],
                workers=2,
                retry=RetryPolicy(
                    max_attempts=2, base_delay_s=0.0, max_delay_s=0.0
                ),
            )


# -- injected parallel.point faults -------------------------------------

def test_sequential_point_fault_is_retried(split):
    injector = FaultInjector().arm("parallel.point", rate=1.0, max_fires=1)
    with use_injector(injector):
        with pytest.warns(RuntimeWarning, match="retrying"):
            results = run_sweep(
                make_sweep(split), ["fixed8"], workers=1, retry=FAST_RETRY
            )
    assert injector.counts() == {"parallel.point": 1}
    assert len(results) == 1
    want = make_sweep(split).run_precision(get_precision("fixed8"))
    assert results[0].accuracy == want.accuracy  # retry kept determinism


def test_sequential_point_fault_exhaustion_propagates(split):
    injector = FaultInjector().arm("parallel.point", rate=1.0)
    with use_injector(injector):
        with pytest.warns(RuntimeWarning):
            with pytest.raises(FaultInjectedError):
                run_sweep(
                    make_sweep(split),
                    ["fixed8"],
                    workers=1,
                    retry=RetryPolicy(
                        max_attempts=2, base_delay_s=0.0, max_delay_s=0.0
                    ),
                )
    assert injector.counts() == {"parallel.point": 2}  # one per attempt


def test_parallel_point_fault_resubmits_just_that_point(split):
    injector = FaultInjector().arm("parallel.point", rate=1.0, max_fires=1)
    with use_injector(injector):
        with pytest.warns(RuntimeWarning, match="resubmit"):
            results = run_sweep(
                make_sweep(split),
                ["fixed8", "binary"],
                workers=2,
                retry=FAST_RETRY,
            )
    assert [r.spec.key for r in results] == ["fixed8", "binary"]
    assert injector.counts() == {"parallel.point": 1}


# -- injected cache.read faults -----------------------------------------

def fixed8_result():
    return PrecisionResult(
        spec=get_precision("fixed8"),
        accuracy=0.75,
        converged=True,
        history={"val_accuracy": [0.5, 0.75]},
    )


def test_cache_read_raise_is_a_transient_miss(tmp_path):
    cache = SweepCache(str(tmp_path))
    path = cache.put("ab" * 32, fixed8_result())
    injector = FaultInjector().arm("cache.read", rate=1.0, max_fires=1)
    with use_injector(injector):
        assert cache.get("ab" * 32) is None       # injected raise -> miss
        assert os.path.exists(path)               # ...but the entry survives
        hit = cache.get("ab" * 32)                # fault exhausted -> hit
    assert hit is not None and hit.accuracy == 0.75
    assert cache.misses == 1 and cache.hits == 1


def test_cache_read_corruption_drops_the_entry(tmp_path):
    cache = SweepCache(str(tmp_path))
    path = cache.put("cd" * 32, fixed8_result())
    injector = FaultInjector().arm(
        "cache.read", mode="corrupt", rate=1.0, max_fires=1
    )
    with use_injector(injector):
        assert cache.get("cd" * 32) is None  # corrupt payload -> recovery
    assert not os.path.exists(path)          # corrupt entries are removed
    assert cache.get("cd" * 32) is None      # stays a plain miss
    assert cache.misses == 2
