"""Backend registry, selection precedence, and entry-point contracts."""

import os

import numpy as np
import pytest

from repro import backends, core, nn
from repro.errors import ConfigurationError
from tests.conftest import make_tiny_cnn


@pytest.fixture(autouse=True)
def clean_selection(monkeypatch):
    """Isolate each test from process-wide default / env leakage."""
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    backends.set_default(None)
    yield
    backends.set_default(None)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert backends.available() == ["fused", "reference"]
    assert backends.get("reference").name == "reference"
    assert backends.get("fused").name == "fused"
    # instances are shared singletons
    assert backends.get("fused") is backends.get("fused")


def test_unknown_backend_raises_with_choices():
    with pytest.raises(ConfigurationError, match="unknown backend 'nope'"):
        backends.get("nope")
    with pytest.raises(ConfigurationError, match="available"):
        backends.resolve("nope")


def test_register_custom_backend():
    class EchoBackend(backends.ReferenceBackend):
        name = "echo"

    backends.register("echo", EchoBackend)
    try:
        assert "echo" in backends.available()
        assert isinstance(backends.resolve("echo"), EchoBackend)
    finally:
        # drop it again to keep the registry canonical for other tests
        from repro.backends import registry as backend_registry

        backend_registry._factories.pop("echo", None)
        backend_registry._instances.pop("echo", None)


# ----------------------------------------------------------------------
# Selection precedence: explicit arg > set_default > env > built-in
# ----------------------------------------------------------------------
def test_default_is_fused():
    assert backends.get_default() == "fused"
    assert backends.resolve(None).name == "fused"


def test_env_var_overrides_builtin_default(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "reference")
    assert backends.get_default() == "reference"
    assert backends.resolve(None).name == "reference"


def test_set_default_overrides_env(monkeypatch):
    monkeypatch.setenv(backends.ENV_VAR, "fused")
    backends.set_default("reference")
    assert backends.get_default() == "reference"
    backends.set_default(None)  # cleared -> env visible again
    assert backends.get_default() == "fused"


def test_set_default_validates_name():
    with pytest.raises(ConfigurationError):
        backends.set_default("bogus")


def test_explicit_argument_beats_everything(monkeypatch, tiny_digits):
    monkeypatch.setenv(backends.ENV_VAR, "fused")
    backends.set_default("fused")
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    impl = backends.resolve("reference")
    assert impl.name == "reference"
    out = qnet.infer(tiny_digits.test.images[:2], backend="reference")
    assert out.shape == (2, 10)


def test_resolve_accepts_instances_and_rejects_junk():
    instance = backends.FusedBackend()
    assert backends.resolve(instance) is instance
    with pytest.raises(ConfigurationError, match="name or Backend"):
        backends.resolve(42)


def test_using_backend_context_restores_previous():
    backends.set_default("fused")
    with backends.using_backend("reference") as impl:
        assert impl.name == "reference"
        assert backends.get_default() == "reference"
    assert backends.get_default() == "fused"


def test_network_level_backend_choice(tiny_digits):
    qnet = core.QuantizedNetwork(
        make_tiny_cnn(), "fixed8", backend="reference"
    )
    qnet.calibrate(tiny_digits.train.images[:16])
    reference = qnet.infer(tiny_digits.test.images[:3])
    fused = qnet.infer(tiny_digits.test.images[:3], backend="fused")
    np.testing.assert_array_equal(reference, fused)
    frozen = qnet.freeze()  # inherits the network's backend
    try:
        assert frozen.backend.name == "reference"
    finally:
        frozen.thaw()


# ----------------------------------------------------------------------
# Per-operation entry points
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["reference", "fused"])
def test_entry_points_match_layer_forward(name, rng):
    impl = backends.get(name)
    dense = nn.Dense(12, 5, name="d", rng=rng)
    dense.eval_mode()
    x2 = rng.standard_normal((3, 12)).astype(np.float32)
    np.testing.assert_array_equal(impl.dense(dense, x2), dense.forward(x2))

    conv = nn.Conv2D(2, 3, kernel_size=3, padding=1, name="c", rng=rng)
    conv.eval_mode()
    x4 = rng.standard_normal((2, 2, 8, 8)).astype(np.float32)
    np.testing.assert_array_equal(impl.conv(conv, x4), conv.forward(x4))

    for pool in (nn.MaxPool2D(2, name="mp"), nn.AvgPool2D(2, name="ap")):
        pool.eval_mode()
        np.testing.assert_array_equal(impl.pool(pool, x4), pool.forward(x4))

    relu = nn.ReLU(name="r")
    relu.eval_mode()
    np.testing.assert_array_equal(impl.act(relu, x4), relu.forward(x4))


def test_entry_points_return_caller_owned_arrays(rng):
    impl = backends.get("fused")
    dense = nn.Dense(6, 4, name="d", rng=rng)
    dense.eval_mode()
    x = rng.standard_normal((2, 6)).astype(np.float32)
    first = impl.dense(dense, x)
    snapshot = first.copy()
    impl.dense(dense, rng.standard_normal((2, 6)).astype(np.float32))
    np.testing.assert_array_equal(first, snapshot)
    assert first.base is None, "entry points must not return scratch views"


def test_compile_units_absorbs_trailing_quant():
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    units = backends.compile_units(qnet.pipeline)
    # quant_in leads as its own unit; every conv/dense unit carries its
    # trailing FakeQuantLayer; pools/flatten have none
    assert units[0].kind == "quant"
    by_kind = {}
    for unit in units:
        by_kind.setdefault(unit.kind, []).append(unit)
    assert all(u.quant is not None for u in by_kind["conv"])
    assert all(u.quant is not None for u in by_kind["dense"])
    assert all(u.quant is None for u in by_kind["maxpool"])
    assert all(u.quant is None for u in by_kind["reshape"])
    total_layers = sum(
        2 if unit.quant is not None else 1 for unit in units
    )
    assert total_layers == len(qnet.pipeline.layers)


def test_frozen_view_uses_selected_backend(tiny_digits):
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.calibrate(tiny_digits.train.images[:16])
    frozen = qnet.freeze(backend="fused")
    try:
        assert frozen.backend is backends.get("fused")
        out = frozen.forward(tiny_digits.test.images[:2])
        assert out.shape == (2, 10)
    finally:
        frozen.thaw()


def test_env_var_reaches_subprocess(tmp_path):
    """REPRO_BACKEND is how sweep worker processes inherit --backend."""
    import subprocess
    import sys

    code = (
        "from repro import backends; print(backends.get_default())"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in ("src", env.get("PYTHONPATH")) if part
    )
    env[backends.ENV_VAR] = "reference"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, cwd=os.getcwd(),
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "reference"
