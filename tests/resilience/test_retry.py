"""RetryPolicy / retry_call: jitter bounds, attempt accounting."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.resilience import RetryPolicy, retry_call


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_delay_s=-0.1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_delay_s=-1.0)


def test_backoff_is_full_jitter_within_cap():
    policy = RetryPolicy(max_attempts=10, base_delay_s=0.1, max_delay_s=1.0)
    rng = random.Random(0)
    for attempt in range(10):
        cap = min(1.0, 0.1 * 2.0 ** attempt)
        for _ in range(50):
            delay = policy.backoff_s(attempt, rng)
            assert 0.0 <= delay <= cap


def test_backoff_deterministic_under_seeded_rng():
    policy = RetryPolicy()
    a = [policy.backoff_s(i, random.Random(7)) for i in range(5)]
    b = [policy.backoff_s(i, random.Random(7)) for i in range(5)]
    assert a == b


def test_first_try_success_never_sleeps():
    sleeps = []
    result = retry_call(lambda: "ok", sleep=sleeps.append)
    assert result == "ok"
    assert sleeps == []


def test_retries_then_succeeds():
    calls = []
    retried = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise OSError("transient")
        return 42

    result = retry_call(
        flaky,
        policy=RetryPolicy(max_attempts=5),
        retry_on=(OSError,),
        rng=random.Random(0),
        on_retry=lambda attempt, error: retried.append((attempt, type(error))),
        sleep=lambda s: None,
    )
    assert result == 42
    assert len(calls) == 3
    assert retried == [(0, OSError), (1, OSError)]


def test_exhaustion_propagates_last_error():
    calls = []

    def always_fails():
        calls.append(1)
        raise OSError(f"attempt {len(calls)}")

    with pytest.raises(OSError, match="attempt 3"):
        retry_call(
            always_fails,
            policy=RetryPolicy(max_attempts=3),
            retry_on=(OSError,),
            sleep=lambda s: None,
        )
    assert len(calls) == 3


def test_non_retryable_error_propagates_immediately():
    calls = []

    def wrong_kind():
        calls.append(1)
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        retry_call(
            wrong_kind,
            policy=RetryPolicy(max_attempts=5),
            retry_on=(OSError,),
            sleep=lambda s: None,
        )
    assert len(calls) == 1


def test_sleeps_follow_the_policy_schedule():
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.5, max_delay_s=10.0)
    slept = []

    def fails_three_times(state={"n": 0}):
        state["n"] += 1
        if state["n"] < 4:
            raise OSError("again")
        return state["n"]

    retry_call(
        fails_three_times,
        policy=policy,
        retry_on=(OSError,),
        rng=random.Random(3),
        sleep=slept.append,
    )
    expected_rng = random.Random(3)
    expected = [policy.backoff_s(i, expected_rng) for i in range(3)]
    assert slept == expected
