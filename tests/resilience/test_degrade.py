"""DegradePolicy: validation and watermark routing."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience import DegradePolicy


def test_validation():
    with pytest.raises(ConfigurationError):
        DegradePolicy(watermark=0, fallback={"fixed8": "fixed4"})
    with pytest.raises(ConfigurationError):
        DegradePolicy(watermark=4, fallback={})
    with pytest.raises(ConfigurationError):
        DegradePolicy(watermark=4, fallback={"fixed8": "fixed8"})


def test_routes_only_at_or_above_watermark():
    policy = DegradePolicy(watermark=10, fallback={"fixed8": "fixed4"})
    assert policy.route("fixed8", 0) == "fixed8"
    assert policy.route("fixed8", 9) == "fixed8"
    assert policy.route("fixed8", 10) == "fixed4"  # watermark is inclusive
    assert policy.route("fixed8", 500) == "fixed4"


def test_unmapped_precision_never_degrades():
    policy = DegradePolicy(watermark=1, fallback={"fixed8": "fixed4"})
    assert policy.route("float32", 100) == "float32"


def test_chains_are_not_followed():
    policy = DegradePolicy(
        watermark=1, fallback={"fixed8": "fixed4", "fixed4": "fixed2"}
    )
    # one submission degrades at most one step
    assert policy.route("fixed8", 5) == "fixed4"
