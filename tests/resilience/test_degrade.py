"""DegradePolicy: validation and watermark routing (via the shim).

DegradePolicy is now a deprecated shim over
``repro.control.AutoTuner.latency_only``; these tests pin the original
behavior through the shim so the compatibility contract stays honest.
"""

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.resilience import DegradePolicy


def test_validation():
    with pytest.raises(ConfigurationError):
        DegradePolicy(watermark=0, fallback={"fixed8": "fixed4"})
    with pytest.raises(ConfigurationError):
        DegradePolicy(watermark=4, fallback={})
    with pytest.raises(ConfigurationError):
        DegradePolicy(watermark=4, fallback={"fixed8": "fixed8"})


def test_routes_only_at_or_above_watermark():
    policy = DegradePolicy(watermark=10, fallback={"fixed8": "fixed4"})
    assert policy.route("fixed8", 0) == "fixed8"
    assert policy.route("fixed8", 9) == "fixed8"
    assert policy.route("fixed8", 10) == "fixed4"  # watermark is inclusive
    assert policy.route("fixed8", 500) == "fixed4"


def test_unmapped_precision_never_degrades():
    policy = DegradePolicy(watermark=1, fallback={"fixed8": "fixed4"})
    assert policy.route("float32", 100) == "float32"


def test_chains_are_not_followed():
    policy = DegradePolicy(
        watermark=1, fallback={"fixed8": "fixed4", "fixed4": "fixed2"}
    )
    # one submission degrades at most one step
    assert policy.route("fixed8", 5) == "fixed4"


def test_deprecation_warns_once_per_process():
    import repro.resilience.degrade as degrade_module

    degrade_module._DEPRECATION_WARNED.clear()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        DegradePolicy(watermark=2, fallback={"fixed8": "fixed4"})
        DegradePolicy(watermark=3, fallback={"fixed8": "fixed4"})
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "repro.control.AutoTuner" in str(deprecations[0].message)


def test_shim_delegates_to_autotuner():
    from repro.control import AutoTuner

    policy = DegradePolicy(watermark=4, fallback={"fixed8": "fixed4"})
    assert isinstance(policy._tuner, AutoTuner)
    assert policy._tuner.watermark_mode
    # the shim still exposes the old public attributes
    assert policy.watermark == 4
    assert policy.fallback == {"fixed8": "fixed4"}
