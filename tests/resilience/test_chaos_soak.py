"""The chaos soak: 1,000 requests under armed faults, zero lost futures.

This is the acceptance test for the resilience layer as a whole: with
every injection site armed on a seeded schedule, each submitted request
must still terminate in exactly one of {result, DeadlineExceededError,
typed server error} — no future may hang, and no worker thread may
outlive the server.
"""

import threading

import pytest

from repro.data import load_dataset
from repro.serve import InferenceServer, ModelStore, run_closed_loop
from repro.resilience import chaos_preset, use_injector

N_REQUESTS = 1000


@pytest.fixture(scope="module")
def digits_images():
    split = load_dataset("digits", n_train=32, n_test=64, seed=0)
    return split.test.images


def serve_worker_threads():
    return [
        thread for thread in threading.enumerate()
        if thread.name.startswith("serve-worker") and thread.is_alive()
    ]


def test_chaos_soak_accounts_for_every_request(digits_images):
    store = ModelStore(
        calibration_data={"digits": digits_images[:32]}, calibration_images=32
    )
    injector = chaos_preset(seed=0)
    before = len(serve_worker_threads())
    with use_injector(injector):
        with InferenceServer(
            store, workers=4, max_batch_size=16, max_queue_depth=256
        ) as server:
            outcome = run_closed_loop(
                server,
                digits_images,
                "lenet_small",
                "fixed8",
                n_requests=N_REQUESTS,
                concurrency=32,
                deadline_ms=5000.0,
            )

    # every admitted request terminated in exactly one bucket
    assert outcome.submitted == N_REQUESTS
    assert outcome.lost == 0
    assert outcome.accounted == N_REQUESTS, (
        f"completed={outcome.report.completed} "
        f"errors={outcome.client_errors} "
        f"deadline={outcome.deadline_expired} "
        f"lost={outcome.lost}"
    )
    # server- and client-side accounting agree
    assert outcome.report.deadline_expired == outcome.deadline_expired
    assert outcome.report.completed + outcome.report.failed >= (
        N_REQUESTS - outcome.deadline_expired
    )
    # the seeded schedule actually exercised the serve-path sites
    counts = injector.counts()
    assert counts.get("engine.forward", 0) > 0
    # no worker thread survived the drain
    assert len(serve_worker_threads()) == before


def test_chaos_run_replays_identically(digits_images):
    """Same seed, same traffic -> the same injected-fault schedule."""

    def run(seed):
        store = ModelStore(
            calibration_data={"digits": digits_images[:32]},
            calibration_images=32,
        )
        injector = chaos_preset(seed=seed)
        with use_injector(injector):
            with InferenceServer(store, workers=1, max_batch_size=8) as server:
                outcome = run_closed_loop(
                    server,
                    digits_images,
                    "lenet_small",
                    "fixed8",
                    n_requests=64,
                    concurrency=1,  # single client: deterministic order
                )
        return outcome, injector.counts()

    first, first_counts = run(3)
    second, second_counts = run(3)
    assert first_counts == second_counts
    assert first.client_errors == second.client_errors
    assert first.accounted == second.accounted == 64
