"""FaultInjector: seeded schedules, all modes, process-wide install."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FaultInjectedError
from repro.resilience import (
    SITES,
    FaultInjector,
    chaos_preset,
    get_injector,
    set_injector,
    use_injector,
)


def test_unarmed_injector_is_a_noop():
    injector = FaultInjector()
    assert not injector.armed
    for site in SITES:
        injector.fire(site)  # must not raise
        assert injector.corrupt(site, "payload") == "payload"
    assert injector.counts() == {}


def test_raise_mode_names_the_site():
    injector = FaultInjector().arm("store.build", mode="raise", rate=1.0)
    with pytest.raises(FaultInjectedError, match="store.build"):
        injector.fire("store.build")
    # other sites stay quiet
    injector.fire("engine.forward")
    assert injector.counts() == {"store.build": 1}


def test_delay_mode_uses_injected_sleep():
    slept = []
    injector = FaultInjector(sleep=slept.append)
    injector.arm("engine.forward", mode="delay", rate=1.0, delay_s=0.25)
    injector.fire("engine.forward")
    injector.fire("engine.forward")
    assert slept == [0.25, 0.25]
    assert injector.counts() == {"engine.forward": 2}


def test_corrupt_mode_mangles_arrays_dicts_and_scalars():
    injector = FaultInjector(seed=0).arm("cache.read", mode="corrupt", rate=1.0)
    clean = np.linspace(-1.0, 1.0, 12, dtype=np.float32).reshape(3, 4)
    dirty = injector.corrupt("cache.read", clean.copy())
    assert dirty.shape == clean.shape and dirty.dtype == clean.dtype
    assert not np.allclose(dirty, clean, atol=1.0)  # noise is large on purpose
    assert injector.corrupt("cache.read", {"schema": 1}) == {"__corrupted__": True}
    assert injector.corrupt("cache.read", 3.14) is None


def test_seeded_schedule_replays_identically():
    def run(seed):
        injector = FaultInjector(seed=seed)
        injector.arm("parallel.point", mode="raise", rate=0.3)
        outcomes = []
        for _ in range(64):
            try:
                injector.fire("parallel.point")
                outcomes.append(False)
            except FaultInjectedError:
                outcomes.append(True)
        return outcomes

    assert run(5) == run(5)
    assert run(5) != run(6)  # different seed -> different schedule
    assert any(run(5)) and not all(run(5))  # partial rate actually partial


def test_max_fires_exhausts_the_spec():
    injector = FaultInjector().arm("cache.read", rate=1.0, max_fires=2)
    for _ in range(2):
        with pytest.raises(FaultInjectedError):
            injector.fire("cache.read")
    injector.fire("cache.read")  # exhausted: silent
    assert injector.counts() == {"cache.read": 2}


def test_disarm_site_and_everything():
    injector = FaultInjector()
    injector.arm("store.build").arm("cache.read")
    injector.disarm("store.build")
    injector.fire("store.build")
    with pytest.raises(FaultInjectedError):
        injector.fire("cache.read")
    injector.disarm()
    assert not injector.armed
    injector.fire("cache.read")


def test_arm_validation():
    injector = FaultInjector()
    with pytest.raises(ConfigurationError):
        injector.arm("store.build", mode="explode")
    with pytest.raises(ConfigurationError):
        injector.arm("store.build", rate=1.5)


def test_use_injector_installs_and_restores():
    original = get_injector()
    replacement = FaultInjector().arm("engine.forward")
    with use_injector(replacement) as active:
        assert active is replacement
        assert get_injector() is replacement
    assert get_injector() is original


def test_set_injector_returns_previous():
    original = get_injector()
    replacement = FaultInjector()
    previous = set_injector(replacement)
    try:
        assert previous is original
        assert get_injector() is replacement
    finally:
        set_injector(original)


def test_chaos_preset_arms_every_site_survivably():
    injector = chaos_preset(seed=1)
    assert injector.armed
    # every instrumented site can fire under the preset...
    fired = set()
    for _ in range(500):
        for site in SITES:
            try:
                injector.fire(site)
            except FaultInjectedError:
                fired.add(site)
    assert fired == set(SITES)
    # ...but none is armed at rate 1.0 (the preset must be survivable)
    assert all(count < 500 for count in injector.counts().values())
