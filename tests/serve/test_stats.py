"""ServerStats accounting, report formatting and the snapshot contract."""

import numpy as np

from repro.obs import MetricsRegistry
from repro.serve import ServerStats, latency_percentiles


def _isolated_stats() -> ServerStats:
    """Stats wired to a private registry so tests don't share state."""
    return ServerStats(metrics=MetricsRegistry())


def test_empty_report_is_all_zero():
    report = _isolated_stats().report()
    assert report.completed == 0
    assert report.throughput_ips == 0.0
    assert report.latency_ms_p99 == 0.0
    assert report.energy_uj_total == 0.0
    assert report.batch_histogram == {}
    assert "(empty)" in report.format()


def test_percentiles_and_energy_accumulate():
    stats = _isolated_stats()
    stats.record_submission()
    for latency in range(1, 101):  # 1..100 ms
        stats.record_completion(latency_ms=float(latency), queue_ms=0.5,
                                energy_uj=2.0)
    report = stats.report()
    assert report.completed == 100
    assert report.latency_ms_p50 == np.percentile(np.arange(1.0, 101.0), 50)
    assert report.latency_ms_p95 == np.percentile(np.arange(1.0, 101.0), 95)
    assert report.latency_ms_p99 == np.percentile(np.arange(1.0, 101.0), 99)
    assert report.latency_ms_max == 100.0
    assert report.energy_uj_total == 200.0
    assert report.energy_uj_per_image == 2.0
    assert report.queue_ms_mean == 0.5


def test_batch_histogram_and_mean():
    stats = _isolated_stats()
    stats.record_batch(1, queue_depth=0)
    stats.record_batch(8, queue_depth=3)
    stats.record_batch(8, queue_depth=9)
    report = stats.report()
    assert report.batch_histogram == {1: 1, 8: 2}
    assert report.mean_batch_size == (1 + 8 + 8) / 3
    assert report.max_queue_depth == 9


def test_rejections_and_failures_counted():
    stats = _isolated_stats()
    stats.record_rejection()
    stats.record_failure(3)
    report = stats.report()
    assert report.rejected == 1
    assert report.failed == 3
    assert "rejected 1" in report.format()


def test_report_format_mentions_key_metrics():
    stats = _isolated_stats()
    stats.record_submission()
    stats.record_batch(4, queue_depth=2)
    stats.record_completion(latency_ms=3.0, queue_ms=1.0, energy_uj=1.5)
    text = stats.report().format()
    for needle in ("throughput", "p50", "p95", "p99", "batch-size histogram",
                   "modeled energy", "uJ"):
        assert needle in text, needle


def test_snapshot_is_plain_dict_matching_report():
    stats = _isolated_stats()
    stats.record_submission()
    stats.record_batch(2, queue_depth=1)
    stats.record_completion(latency_ms=4.0, queue_ms=1.0, energy_uj=1.0)
    stats.record_completion(latency_ms=6.0, queue_ms=2.0, energy_uj=1.0)
    snapshot = stats.snapshot()
    report = stats.report()
    assert isinstance(snapshot, dict)
    assert snapshot["completed"] == report.completed == 2
    assert snapshot["latency_ms_p50"] == report.latency_ms_p50
    assert snapshot["energy_uj_total"] == report.energy_uj_total
    assert snapshot["batch_histogram"] == {2: 1}


def test_stats_publish_into_metrics_registry():
    registry = MetricsRegistry()
    stats = ServerStats(metrics=registry)
    stats.record_rejection()
    stats.record_batch(4, queue_depth=7)
    stats.record_completion(latency_ms=5.0, queue_ms=2.0, energy_uj=3.0)
    snap = registry.snapshot()
    assert snap["counters"]["serve.rejected"] == 1
    assert snap["counters"]["serve.completed"] == 1
    assert snap["counters"]["serve.energy_uj"] == 3.0
    assert snap["gauges"]["serve.queue_depth"] == 7
    assert snap["histograms"]["serve.latency_ms"]["count"] == 1
    assert snap["histograms"]["serve.batch_size"]["max"] == 4


def test_wall_clock_starts_at_admission_not_rejection():
    """Regression: a rejected burst must not inflate ``wall_s``.

    The clock used to start on the first *submission attempt*; a burst
    of backpressure rejections long before real traffic then stretched
    the throughput and energy-per-image denominators.
    """
    fake = {"t": 0.0}
    stats = ServerStats(metrics=MetricsRegistry(), clock=lambda: fake["t"])
    for _ in range(5):
        stats.record_rejection()   # t = 0: overload burst, nothing admitted
    fake["t"] = 100.0
    stats.record_admission()       # real traffic starts here
    fake["t"] = 101.0
    stats.record_completion(latency_ms=5.0, queue_ms=1.0, energy_uj=2.0)
    report = stats.report()
    assert report.wall_s == 1.0    # not 101.0
    assert report.throughput_ips == 1.0
    assert report.rejected == 5


def test_rejection_only_run_reports_zero_wall():
    stats = _isolated_stats()
    for _ in range(3):
        stats.record_rejection()
    report = stats.report()
    assert report.wall_s == 0.0
    assert report.throughput_ips == 0.0
    assert report.completed == 0


def test_deadline_and_degraded_counters_flow_to_report_and_metrics():
    registry = MetricsRegistry()
    stats = ServerStats(metrics=registry)
    stats.record_deadline_expired(2)
    stats.record_degraded(3)
    report = stats.report()
    assert report.deadline_expired == 2
    assert report.degraded == 3
    assert "deadline expired 2" in report.format()
    assert "degraded 3" in report.format()
    snap = registry.snapshot()
    assert snap["counters"]["serve.deadline_expired"] == 2
    assert snap["counters"]["serve.degraded"] == 3


def test_record_submission_alias_still_works():
    fake = {"t": 7.0}
    stats = ServerStats(metrics=MetricsRegistry(), clock=lambda: fake["t"])
    stats.record_submission()  # pre-deadline-era name for record_admission
    fake["t"] = 9.0
    stats.record_completion(latency_ms=1.0, queue_ms=0.0, energy_uj=0.0)
    assert stats.report().wall_s == 2.0


def test_latency_percentiles_helper():
    assert latency_percentiles([]) == (0.0, 0.0, 0.0)
    p50, p95, p99 = latency_percentiles(list(range(1, 101)))
    assert p50 == 50.5
    assert p95 > p50
    assert p99 > p95
