"""ServerStats accounting and report formatting."""

import numpy as np

from repro.serve import ServerStats, latency_percentiles


def test_empty_snapshot_is_all_zero():
    report = ServerStats().snapshot()
    assert report.completed == 0
    assert report.throughput_ips == 0.0
    assert report.latency_ms_p99 == 0.0
    assert report.energy_uj_total == 0.0
    assert report.batch_histogram == {}
    assert "(empty)" in report.format()


def test_percentiles_and_energy_accumulate():
    stats = ServerStats()
    stats.record_submission()
    for latency in range(1, 101):  # 1..100 ms
        stats.record_completion(latency_ms=float(latency), queue_ms=0.5,
                                energy_uj=2.0)
    report = stats.snapshot()
    assert report.completed == 100
    assert report.latency_ms_p50 == np.percentile(np.arange(1.0, 101.0), 50)
    assert report.latency_ms_p95 == np.percentile(np.arange(1.0, 101.0), 95)
    assert report.latency_ms_p99 == np.percentile(np.arange(1.0, 101.0), 99)
    assert report.latency_ms_max == 100.0
    assert report.energy_uj_total == 200.0
    assert report.energy_uj_per_image == 2.0
    assert report.queue_ms_mean == 0.5


def test_batch_histogram_and_mean():
    stats = ServerStats()
    stats.record_batch(1, queue_depth=0)
    stats.record_batch(8, queue_depth=3)
    stats.record_batch(8, queue_depth=9)
    report = stats.snapshot()
    assert report.batch_histogram == {1: 1, 8: 2}
    assert report.mean_batch_size == (1 + 8 + 8) / 3
    assert report.max_queue_depth == 9


def test_rejections_and_failures_counted():
    stats = ServerStats()
    stats.record_rejection()
    stats.record_failure(3)
    report = stats.snapshot()
    assert report.rejected == 1
    assert report.failed == 3
    assert "rejected 1" in report.format()


def test_report_format_mentions_key_metrics():
    stats = ServerStats()
    stats.record_submission()
    stats.record_batch(4, queue_depth=2)
    stats.record_completion(latency_ms=3.0, queue_ms=1.0, energy_uj=1.5)
    text = stats.snapshot().format()
    for needle in ("throughput", "p50", "p95", "p99", "batch-size histogram",
                   "modeled energy", "uJ"):
        assert needle in text, needle


def test_latency_percentiles_helper():
    assert latency_percentiles([]) == (0.0, 0.0, 0.0)
    p50, p95, p99 = latency_percentiles(list(range(1, 101)))
    assert p50 == 50.5
    assert p95 > p50
    assert p99 > p95
