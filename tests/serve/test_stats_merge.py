"""Fleet stats merging: no averages-of-averages, exact pooled tails."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import ServerStats, merge_reports


def make_part(latencies, energy_uj=2.0, batch_size=4, failed=0):
    """A realistic per-replica report plus its raw sample shipment."""
    stats = ServerStats(metrics=MetricsRegistry())
    for _ in latencies:
        stats.record_submission()
    for start in range(0, len(latencies), batch_size):
        stats.record_batch(
            min(batch_size, len(latencies) - start), queue_depth=0
        )
    queue = []
    for latency in latencies:
        stats.record_completion(
            latency_ms=latency, queue_ms=latency / 2, energy_uj=energy_uj
        )
        queue.append(latency / 2)
    if failed:
        stats.record_failure(failed)
    return stats.report(), (list(latencies), queue)


def test_merge_counts_are_sums():
    a, sa = make_part([1.0] * 40, failed=2)
    b, sb = make_part([2.0] * 10, failed=1)
    merged = merge_reports([a, b], [sa, sb])
    assert merged.completed == 50
    assert merged.failed == 3
    assert merged.batch_histogram == {4: 12, 2: 1}


def test_pooled_percentiles_beat_averaged_percentiles():
    # replica A: 99 fast requests and one 100 ms straggler -> high p99.
    # replica B: tiny traffic, all fast.  The fleet p99 must come from
    # the pooled 110 samples, not from averaging the two replica p99s.
    lat_a = [1.0] * 99 + [100.0]
    lat_b = [1.0] * 10
    a, sa = make_part(lat_a)
    b, sb = make_part(lat_b)
    merged = merge_reports([a, b], [sa, sb])
    exact = float(np.percentile(lat_a + lat_b, 99))
    assert merged.latency_ms_p99 == pytest.approx(exact)
    naive = (a.latency_ms_p99 + b.latency_ms_p99) / 2
    assert abs(merged.latency_ms_p99 - exact) < abs(naive - exact)
    assert merged.latency_ms_max == 100.0
    assert merged.latency_ms_mean == pytest.approx(
        float(np.mean(lat_a + lat_b))
    )


def test_energy_per_image_is_total_over_total():
    # 100 cheap completions and 10 expensive ones: the fleet uJ/image
    # is 300/110, nowhere near the unweighted mean of (2, 10).
    a, sa = make_part([1.0] * 100, energy_uj=2.0)
    b, sb = make_part([1.0] * 10, energy_uj=10.0)
    merged = merge_reports([a, b], [sa, sb])
    assert merged.energy_uj_total == pytest.approx(300.0)
    assert merged.energy_uj_per_image == pytest.approx(300.0 / 110.0)


def test_wall_is_max_not_sum():
    # replicas run concurrently: the fleet span is the longest replica
    # span, and throughput divides by that shared wall
    a, sa = make_part([1.0] * 20)
    b, sb = make_part([1.0] * 20)
    merged = merge_reports([a, b], [sa, sb])
    assert merged.wall_s == max(a.wall_s, b.wall_s)
    if merged.wall_s > 0:
        assert merged.throughput_ips == pytest.approx(40 / merged.wall_s)


def test_weighted_fallback_without_raw_samples():
    # when a replica died before shipping samples we fall back to a
    # completion-weighted percentile merge: the 1000-request replica
    # must dominate the 10-request one
    a, _ = make_part([10.0] * 1000)
    b, _ = make_part([1.0] * 10)
    merged = merge_reports([a, b])
    assert abs(merged.latency_ms_p99 - a.latency_ms_p99) < abs(
        merged.latency_ms_p99 - b.latency_ms_p99
    )
    assert merged.latency_ms_mean == pytest.approx(
        (10.0 * 1000 + 1.0 * 10) / 1010
    )


def test_merge_rejects_mismatched_sample_sets():
    a, sa = make_part([1.0] * 4)
    b, _ = make_part([1.0] * 4)
    with pytest.raises(ValueError, match="sample sets"):
        merge_reports([a, b], [sa])


def test_merge_of_nothing_is_an_empty_report():
    merged = merge_reports([])
    assert merged.completed == 0
    assert merged.latency_ms_p99 == 0.0


def test_merge_pools_served_artifacts():
    a, sa = make_part([1.0] * 8)
    b, sb = make_part([1.0] * 8)
    stats_a = ServerStats(metrics=MetricsRegistry())
    stats_a.record_batch(4, 0)
    stats_a.record_artifact("lenet_small@fixed8", "aaa", 1)
    stats_b = ServerStats(metrics=MetricsRegistry())
    stats_b.record_batch(4, 0)
    stats_b.record_artifact("lenet_small@fixed8", "aaa", 1)
    merged = merge_reports(
        [stats_a.report(), stats_b.report()], [([], []), ([], [])]
    )
    entry = merged.served_artifacts["lenet_small@fixed8"]
    assert entry["digest"] == "aaa"
    assert entry["batches"] == 2


# -- regression: zero completion weights used to yield NaN percentiles --

def test_weighted_percentile_zero_weights_is_zero_not_nan():
    from repro.serve.stats import _weighted_percentile

    values = np.asarray([5.0, 10.0, 20.0])
    weights = np.zeros(3)
    result = _weighted_percentile(values, weights, 99)
    assert result == 0.0
    assert not np.isnan(result)


def test_weighted_percentile_empty_inputs_are_zero():
    from repro.serve.stats import _weighted_percentile

    assert _weighted_percentile(np.empty(0), np.empty(0), 50) == 0.0


def test_merge_of_idle_replicas_has_no_nans():
    # replicas that served nothing: every weight is zero on the
    # degraded (no-samples) path
    idle_a, _ = make_part([])
    idle_b, _ = make_part([])
    merged = merge_reports([idle_a, idle_b])
    assert merged.completed == 0
    for value in (merged.latency_ms_p50, merged.latency_ms_p95,
                  merged.latency_ms_p99, merged.latency_ms_mean):
        assert not np.isnan(value)


# -- regression: dead replicas must drop with their sample slots --------

def test_dead_replica_drops_its_sample_slot_too():
    a, sa = make_part([1.0] * 8)
    b, sb = make_part([9.0] * 8)
    with_dead = merge_reports([a, None, b], [sa, ([123.0], [123.0]), sb])
    without = merge_reports([a, b], [sa, sb])
    assert with_dead.completed == without.completed
    assert with_dead.latency_ms_p99 == without.latency_ms_p99
    assert with_dead.latency_ms_max == without.latency_ms_max  # no 123 ms


def test_alignment_check_runs_before_dead_replica_filtering():
    a, sa = make_part([1.0] * 4)
    # one dead replica, but only one sample set for two parts: must
    # raise instead of silently pairing the survivor with the wrong slot
    with pytest.raises(ValueError, match="sample sets"):
        merge_reports([a, None], [sa])
