"""ModelStore: build, calibrate, freeze, LRU-evict under a budget."""

import numpy as np
import pytest

from repro import nn
from repro.data import load_dataset
from repro.serve import ModelKey, ModelStore
from repro.zoo import build_network


@pytest.fixture(scope="module")
def calibration():
    split = load_dataset("digits", n_train=32, n_test=16, seed=0)
    return {"digits": split.train.images}


def test_get_builds_and_caches(calibration):
    store = ModelStore(calibration_data=calibration, calibration_images=32)
    first = store.get("lenet_small", "fixed8")
    second = store.get("lenet_small", "fixed8")
    assert first is second
    assert store.misses == 1 and store.hits == 1
    assert store.cached_keys() == [ModelKey("lenet_small", "fixed8")]
    assert first.memory_kb > 0
    assert first.energy_uj_per_image > 0


def test_servable_forward_matches_network_shape(calibration):
    store = ModelStore(calibration_data=calibration)
    servable = store.get("lenet_small", "fixed8")
    batch = calibration["digits"][:4]
    logits = servable.forward(batch)
    assert logits.shape == (4, 10)


def test_float32_servable_needs_no_calibration(calibration):
    store = ModelStore(calibration_data=calibration)
    servable = store.get("lenet_small", "float32")
    logits = servable.forward(calibration["digits"][:2])
    # float32 servable is the plain network output
    reference = build_network("lenet_small", seed=0).predict(
        calibration["digits"][:2]
    )
    np.testing.assert_allclose(logits, reference, rtol=0, atol=0)


def test_low_precision_costs_less_cache_memory(calibration):
    store = ModelStore(calibration_data=calibration)
    full = store.get("lenet_small", "float32")
    int8 = store.get("lenet_small", "fixed8")
    assert int8.memory_kb < full.memory_kb


def test_tiny_budget_keeps_only_newest(calibration):
    store = ModelStore(memory_budget_kb=1.0, calibration_data=calibration)
    store.get("lenet_small", "fixed8")
    store.get("lenet_small", "fixed4")
    assert len(store) == 1  # newest always kept even when over budget
    assert store.cached_keys() == [ModelKey("lenet_small", "fixed4")]
    assert store.evictions == 1
    # the evicted model rebuilds on demand
    assert store.get("lenet_small", "fixed8").key.precision == "fixed8"
    assert store.misses == 3


def test_lru_touch_order(calibration):
    store = ModelStore(calibration_data=calibration)
    store.get("lenet_small", "fixed8")
    store.get("lenet_small", "fixed4")
    store.get("lenet_small", "fixed8")  # touch -> most recent
    assert store.cached_keys() == [
        ModelKey("lenet_small", "fixed4"),
        ModelKey("lenet_small", "fixed8"),
    ]


def test_weight_paths_served_bit_exact(tmp_path, calibration):
    source = build_network("lenet_small", seed=7)
    path = str(tmp_path / "weights.npz")
    nn.save_network_weights(source, path)
    store = ModelStore(
        weight_paths={"lenet_small": path}, calibration_data=calibration
    )
    servable = store.get("lenet_small", "float32")
    assert servable.weights_digest == nn.state_digest(source)
    np.testing.assert_array_equal(
        servable.forward(calibration["digits"][:3]),
        source.predict(calibration["digits"][:3]),
    )


def test_energy_reports_cached_per_spec(calibration):
    store = ModelStore(memory_budget_kb=1.0, calibration_data=calibration)
    store.get("lenet_small", "fixed8")
    store.get("lenet_small", "fixed8")  # cache hit
    store.get("lenet_small", "fixed4")  # evicts fixed8
    store.get("lenet_small", "fixed8")  # servable rebuilt ...
    # ... but the energy model evaluated each (network, spec) only once
    assert len(store.energy_model._reports) == 2
