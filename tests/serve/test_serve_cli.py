"""serve-bench CLI smoke tests (small budgets, fast)."""

import json

import pytest

from repro.cli import main


def test_serve_bench_reports_metrics(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "48", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32", "--skip-baseline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for needle in (
        "serving lenet_small at Fixed-Point (8,8)",
        "throughput",
        "p95",
        "p99",
        "batch-size histogram",
        "modeled energy",
        "uJ/image",
    ):
        assert needle in out, needle


def test_serve_bench_baseline_comparison(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "32", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "batch=1 reference" in out
    assert "dynamic batching speedup" in out


def test_serve_bench_json_output(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "32", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32", "--skip-baseline",
        "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["network"] == "lenet_small"
    assert payload["precision"] == "fixed8"
    assert payload["report"]["completed"] == 32
    assert payload["report"]["latency_ms_p95"] >= payload["report"]["latency_ms_p50"]
    assert payload["report"]["energy_uj_total"] > 0
    assert payload["client_errors"] == 0
    assert "baseline_report" not in payload


def test_serve_bench_rejects_unknown_precision():
    with pytest.raises(SystemExit):
        main(["serve-bench", "--precision", "int3"])


def test_serve_bench_chaos_run_loses_nothing(capsys):
    from repro.resilience import get_injector

    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "64", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32", "--skip-baseline",
        "--chaos", "0", "--deadline-ms", "5000", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["chaos_seed"] == 0
    assert payload["lost"] == 0
    assert payload["accounted"] == payload["submitted"] == 64
    assert "injected_faults" in payload
    # the run-scoped injector was uninstalled afterwards
    assert not get_injector().armed


def test_serve_bench_degrade_flag_reroutes_overload(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "64", "--workers", "1", "--max-batch", "4",
        "--concurrency", "16", "--calibration", "32", "--skip-baseline",
        "--degrade", "fixed4", "--degrade-watermark", "1", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["report"]["completed"] == 64
    # watermark 1 with 16 closed-loop clients: overload is certain
    assert payload["report"]["degraded"] > 0


def test_serve_bench_deadline_flag_accounts_expiries(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "32", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32", "--skip-baseline",
        "--deadline-ms", "30000", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["deadline_ms"] == 30000.0
    # a 30 s budget on a millisecond workload never expires, but every
    # request is still accounted for through the deadline bookkeeping
    assert payload["deadline_expired"] == 0
    assert payload["accounted"] == 32


def test_serve_bench_fleet_mode(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "32", "--max-batch", "8", "--concurrency", "8",
        "--calibration", "8", "--skip-baseline", "--replicas", "2", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["replicas"] == 2
    assert payload["report"]["completed"] == 32
    assert payload["lost"] == 0
    assert payload["client_errors"] == 0
    assert payload["fleet"]["restarts"] == 0
    assert len(payload["fleet"]["replicas"]) == 2
    # the merged replica-side view accounts for every request too
    assert payload["replica_compute"]["completed"] == 32


def test_serve_bench_fleet_validates_canary_flags(capsys):
    # --canary without a registry, and without a control group: both
    # are configuration errors reported before any process spawns
    assert main(["serve-bench", "--canary", "abc123"]) != 0
    assert "--canary needs --registry" in capsys.readouterr().err
    assert main([
        "serve-bench", "--registry", "/tmp/nonexistent-reg",
        "--canary", "abc123", "--replicas", "1",
    ]) != 0
    assert "--replicas >= 2" in capsys.readouterr().err
