"""serve-bench CLI smoke tests (small budgets, fast)."""

import json

import pytest

from repro.cli import main


def test_serve_bench_reports_metrics(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "48", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32", "--skip-baseline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    for needle in (
        "serving lenet_small at Fixed-Point (8,8)",
        "throughput",
        "p95",
        "p99",
        "batch-size histogram",
        "modeled energy",
        "uJ/image",
    ):
        assert needle in out, needle


def test_serve_bench_baseline_comparison(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "32", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "batch=1 reference" in out
    assert "dynamic batching speedup" in out


def test_serve_bench_json_output(capsys):
    code = main([
        "serve-bench", "--network", "lenet_small", "--precision", "fixed8",
        "--requests", "32", "--workers", "2", "--max-batch", "8",
        "--concurrency", "8", "--calibration", "32", "--skip-baseline",
        "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["network"] == "lenet_small"
    assert payload["precision"] == "fixed8"
    assert payload["report"]["completed"] == 32
    assert payload["report"]["latency_ms_p95"] >= payload["report"]["latency_ms_p50"]
    assert payload["report"]["energy_uj_total"] > 0
    assert payload["client_errors"] == 0
    assert "baseline_report" not in payload


def test_serve_bench_rejects_unknown_precision():
    with pytest.raises(SystemExit):
        main(["serve-bench", "--precision", "int3"])
