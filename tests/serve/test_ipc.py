"""Tests for the zero-copy shared-memory tensor ring (repro.serve.ipc)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serve import ReplicaRing, SlotState, TensorRing, scan_segments


@pytest.fixture()
def ring():
    ring = TensorRing.for_batches(
        replica=0, slots=2, max_batch=4, image_floats=3 * 4 * 4
    )
    yield ring
    ring.unlink()


def test_acquire_walks_free_to_loaded(ring):
    slot = ring.acquire(timeout=1.0)
    assert slot == 0
    assert ring.states()[0] == SlotState.LOADED
    assert ring.states()[1] == SlotState.FREE


def test_full_slot_cycle_roundtrips_the_batch(ring):
    rng = np.random.default_rng(0)
    batch = rng.normal(size=(3, 3, 4, 4)).astype(np.float32)
    slot = ring.acquire(timeout=1.0)
    desc = ring.write_batch(slot, batch)
    assert desc.n == 3 and desc.shape == (3, 4, 4)
    ring.mark_inflight(slot)

    # replica side: attach, read the inputs, write logits back
    replica = ReplicaRing(ring.segment_names(), ring.input_bytes)
    seen = replica.read_batch(desc)
    np.testing.assert_array_equal(seen, batch)
    logits = rng.normal(size=(3, 10)).astype(np.float32)
    n_out, dtype = replica.write_output(desc, logits)
    replica.close()

    out = ring.read_output(slot, desc.n, n_out, dtype)
    np.testing.assert_array_equal(out, logits)
    ring.release(slot)
    assert ring.states()[slot] == SlotState.FREE


def test_acquire_blocks_until_release_and_times_out(ring):
    assert ring.acquire(timeout=0.5) == 0
    assert ring.acquire(timeout=0.5) == 1
    # both slots taken: a bounded acquire must time out, not hang
    assert ring.acquire(timeout=0.05) is None
    ring.release(0)
    assert ring.acquire(timeout=0.5) == 0


def test_state_machine_rejects_out_of_order_transitions(ring):
    batch = np.zeros((1, 3, 4, 4), dtype=np.float32)
    with pytest.raises(ConfigurationError):
        ring.write_batch(0, batch)          # FREE, not LOADED
    with pytest.raises(ConfigurationError):
        ring.mark_inflight(0)               # FREE, not LOADED
    with pytest.raises(ConfigurationError):
        ring.release(0)                     # already FREE
    slot = ring.acquire(timeout=1.0)
    with pytest.raises(ConfigurationError):
        ring.read_output(slot, 1, 10, "float32")  # LOADED, not INFLIGHT


def test_write_batch_rejects_oversized_batches(ring):
    slot = ring.acquire(timeout=1.0)
    too_big = np.zeros((64, 3, 4, 4), dtype=np.float32)
    with pytest.raises(ConfigurationError):
        ring.write_batch(slot, too_big)


def test_read_output_rejects_oversized_logits(ring):
    slot = ring.acquire(timeout=1.0)
    ring.write_batch(slot, np.zeros((4, 3, 4, 4), dtype=np.float32))
    ring.mark_inflight(slot)
    with pytest.raises(ServingError):
        ring.read_output(slot, 4, 100000, "float64")


def test_reset_frees_every_slot(ring):
    ring.acquire(timeout=1.0)
    slot = ring.acquire(timeout=1.0)
    ring.write_batch(slot, np.zeros((1, 3, 4, 4), dtype=np.float32))
    ring.mark_inflight(slot)
    ring.reset()
    assert set(ring.states().values()) == {SlotState.FREE}


def test_close_wakes_waiters_with_none(ring):
    ring.acquire(timeout=1.0)
    ring.acquire(timeout=1.0)
    ring.close()
    assert ring.acquire(timeout=5.0) is None


def test_segments_visible_by_token_and_unlink_is_idempotent():
    ring = TensorRing.for_batches(
        replica=3, slots=2, max_batch=2, image_floats=16, token="ipctest1"
    )
    names = scan_segments("ipctest1")
    if names:  # /dev/shm scannable on this platform
        assert len(names) == 2
        assert all("_r3_s" in name for name in names)
    ring.unlink()
    assert scan_segments("ipctest1") == []
    ring.unlink()  # second unlink must not raise


def test_ring_validates_shape():
    with pytest.raises(ConfigurationError):
        TensorRing(replica=0, slots=0, input_bytes=64)
    with pytest.raises(ConfigurationError):
        TensorRing(replica=0, slots=1, input_bytes=0)
