"""run_closed_loop: client-side latency samples, time-bounded runs,
and the admission-gate interaction."""

import time

import numpy as np
import pytest

from repro.control import TokenBucket
from repro.data import load_dataset
from repro.errors import ConfigurationError, ServerOverloadedError
from repro.serve import InferenceServer, ModelStore, run_closed_loop


@pytest.fixture(scope="module")
def digits_images():
    split = load_dataset("digits", n_train=32, n_test=64, seed=0)
    return split.test.images


@pytest.fixture(scope="module")
def store(digits_images):
    store = ModelStore(
        calibration_data={"digits": digits_images[:32]},
        calibration_images=32,
    )
    store.warm("lenet_small", "fixed8")
    return store


def test_client_latencies_recorded_per_request(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        result = run_closed_loop(
            server, digits_images, "lenet_small", "fixed8",
            n_requests=24, concurrency=4,
        )
    assert result.report.completed == 24
    assert len(result.latencies_ms) == 24
    assert all(sample > 0.0 for sample in result.latencies_ms)
    # the client-side view includes the server-side latency and can
    # only add overhead on top of it
    assert max(result.latencies_ms) >= result.report.latency_ms_p50


def test_duration_bounds_the_run(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        started = time.monotonic()
        result = run_closed_loop(
            server, digits_images, "lenet_small", "fixed8",
            n_requests=10_000_000, concurrency=2, duration_s=0.3,
        )
        elapsed = time.monotonic() - started
    # stopped by the clock, far before the request budget
    assert 0 < result.submitted < 10_000_000
    assert elapsed < 30.0
    assert result.lost == 0


def test_duration_validation(store, digits_images):
    with InferenceServer(store, workers=1) as server:
        with pytest.raises(ConfigurationError):
            run_closed_loop(
                server, digits_images, "lenet_small", "fixed8",
                n_requests=1, duration_s=0.0,
            )


def test_admission_gate_throttles_submissions(store, digits_images):
    bucket = TokenBucket(rate_ips=1e-3, burst=2.0)  # two tokens, then shut
    with InferenceServer(
        store, workers=2, max_batch_size=8, admission=bucket
    ) as server:
        futures = [
            server.submit(digits_images[i], "lenet_small", "fixed8")
            for i in range(2)
        ]
        with pytest.raises(ServerOverloadedError):
            server.submit(digits_images[2], "lenet_small", "fixed8")
        for future in futures:
            future.result(timeout=30.0)
    report = server.report()
    assert report.completed == 2
    assert report.throttled == 1
    assert report.rejected == 0  # throttle is not a queue rejection
    assert "throttled 1" in report.format()


def test_closed_loop_retries_through_throttling(store, digits_images):
    # a tight-but-liveable rate: the closed loop must finish, with the
    # throttles surfacing as retries rather than failures
    bucket = TokenBucket(rate_ips=200.0, burst=4.0)
    with InferenceServer(
        store, workers=2, max_batch_size=8, admission=bucket
    ) as server:
        result = run_closed_loop(
            server, digits_images, "lenet_small", "fixed8",
            n_requests=32, concurrency=8,
        )
    assert result.report.completed == 32
    assert result.lost == 0 and result.client_errors == 0
    assert result.retries > 0
    assert result.report.throttled == result.retries


def test_unlimited_bucket_is_transparent(store, digits_images):
    with InferenceServer(
        store, workers=2, max_batch_size=8, admission=TokenBucket()
    ) as server:
        result = run_closed_loop(
            server, digits_images, "lenet_small", "fixed8",
            n_requests=16, concurrency=4,
        )
    assert result.report.completed == 16
    assert result.report.throttled == 0
    assert result.retries == 0


def test_latency_pool_survives_numpy_percentile(store, digits_images):
    with InferenceServer(store, workers=1, max_batch_size=4) as server:
        result = run_closed_loop(
            server, digits_images, "lenet_small", "fixed8",
            n_requests=8, concurrency=2,
        )
    p99 = float(np.percentile(np.asarray(result.latencies_ms), 99))
    assert p99 >= min(result.latencies_ms)
