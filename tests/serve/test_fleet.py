"""Multi-process fleet serving: parity, crash/rejoin, config, reports.

These tests spawn real replica processes (``spawn`` start method), so
they share one module-scoped fleet where possible and keep request
budgets small — replica startup (building + calibrating a servable in
the child) dominates the wall time, not serving.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ReplicaCrashError
from repro.serve import (
    FleetConfig,
    FleetServer,
    InferenceServer,
    ModelStore,
    scan_segments,
)


def make_images(count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.normal(size=(1, 28, 28)).astype(np.float32) for _ in range(count)
    ]


@pytest.fixture(scope="module")
def fleet():
    config = FleetConfig(
        replicas=2,
        warm=[("lenet_small", "fixed8")],
        calibration_images=8,
        seed=0,
        max_batch_size=8,
    )
    server = FleetServer(config)
    server.start()
    yield server
    server.stop()


def test_fleet_matches_in_process_serving_bitwise(fleet):
    """The headline guarantee: sharding is invisible to clients."""
    images = make_images(24)
    futures = [
        fleet.submit(image, "lenet_small", "fixed8") for image in images
    ]
    fleet_results = [future.result(timeout=60.0) for future in futures]

    store = ModelStore(calibration_images=8, seed=0)
    with InferenceServer(store, workers=1) as single:
        futures = [
            single.submit(image, "lenet_small", "fixed8") for image in images
        ]
        single_results = [future.result(timeout=60.0) for future in futures]

    for ours, reference in zip(fleet_results, single_results):
        np.testing.assert_array_equal(ours.logits, reference.logits)


def test_fleet_report_merges_both_views(fleet):
    images = make_images(16, seed=1)
    futures = [
        fleet.submit(image, "lenet_small", "fixed8") for image in images
    ]
    for future in futures:
        result = future.result(timeout=60.0)
        assert result.energy_uj > 0
    report = fleet.fleet_report()
    # the end-to-end view has seen everything submitted so far
    assert report.aggregate.completed >= 16
    assert report.aggregate.failed == 0
    assert len(report.replicas) == 2
    assert fleet.ready_replicas() == 2
    # per-replica counters add up to the front-end total
    by_replica = sum(
        status.completed for status in report.replicas.values()
    )
    assert by_replica == report.aggregate.completed
    formatted = report.format()
    assert "2 replicas" in formatted
    assert "replica 0" in formatted and "replica 1" in formatted


def test_replica_metrics_shape(fleet):
    metrics = fleet.replica_metrics()
    assert set(metrics) == {0, 1}
    for snap in metrics.values():
        assert snap["ready"] is True
        assert snap["completed"] >= 0
        assert isinstance(snap["latencies_ms"], list)


def test_fleet_live_segments_scoped_by_token(fleet):
    if not scan_segments():
        pytest.skip("no scannable /dev/shm on this platform")
    # 2 replicas x ring_slots=2 segments, all carrying the run token
    assert len(scan_segments(fleet._token)) == 4


def test_crash_and_sigkill_lose_nothing():
    """Zero lost futures across a deterministic crash and a SIGKILL."""
    import time

    config = FleetConfig(
        replicas=2,
        warm=[("lenet_small", "fixed8")],
        calibration_images=8,
        seed=0,
        max_batch_size=4,
        heartbeat_timeout_s=10.0,
        crash_replica_after=(1, 2),   # replica 1 dies after 2 batches
    )
    fleet = FleetServer(config)
    fleet.start()
    try:
        futures = []
        for image in make_images(60, seed=2):
            futures.append(fleet.submit(image, "lenet_small", "fixed8"))
            time.sleep(0.002)
        results = [future.result(timeout=120.0) for future in futures]
        assert len(results) == 60
        assert fleet.restarts >= 1
        assert fleet.resubmissions >= 1

        # round two: SIGKILL the other replica mid-stream
        restarts_before = fleet.restarts
        futures = []
        for index, image in enumerate(make_images(40, seed=3)):
            futures.append(fleet.submit(image, "lenet_small", "fixed8"))
            if index == 10:
                fleet.kill_replica(0)
            time.sleep(0.002)
        results = [future.result(timeout=120.0) for future in futures]
        assert len(results) == 40
        assert fleet.restarts > restarts_before
        report = fleet.report()
        assert report.completed == 100
        assert report.failed == 0
    finally:
        fleet.stop()
    # both incarnations' segments are gone after stop
    assert scan_segments(fleet._token) == []


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FleetConfig(replicas=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(ring_slots=0)
    with pytest.raises(ConfigurationError):
        FleetConfig(routing="random")


def test_submit_validates_like_the_in_process_server(fleet):
    with pytest.raises(ConfigurationError):
        fleet.submit(
            np.zeros((28, 28), dtype=np.float32), "lenet_small", "fixed8"
        )
    with pytest.raises(ConfigurationError):
        fleet.submit(
            np.zeros((1, 28, 28), dtype=np.float32),
            "lenet_small", "fixed8", deadline_ms=0,
        )


def test_resubmit_budget_turns_into_a_typed_failure():
    """A batch that outlives its resubmission budget fails loudly."""
    from repro.serve.batcher import Batcher, BatchPolicy
    from repro.serve.request import (
        InferenceRequest, ModelKey, PendingRequest, ServeFuture,
    )

    config = FleetConfig(replicas=1, max_resubmits=1)
    fleet = FleetServer(config)            # never started: unit scope
    fleet._batchers = [Batcher(BatchPolicy())]
    request = InferenceRequest(
        image=np.zeros((1, 28, 28), dtype=np.float32),
        model_key=ModelKey(network="lenet_small", precision="fixed8"),
        request_id=0,
        enqueued_at=0.0,
    )
    pending = PendingRequest(request=request, future=ServeFuture())
    fleet._resubmit([pending])             # 1st: back onto the queue
    assert fleet.resubmissions == 1
    assert fleet._batchers[0].depth() == 1
    requeued = fleet._batchers[0].next_batch(timeout=0.5)
    fleet._resubmit(requeued)              # 2nd: budget exhausted
    with pytest.raises(ReplicaCrashError):
        pending.future.result(timeout=1.0)


def test_hash_routing_is_deterministic_and_spread():
    from repro.serve.request import ModelKey

    ring = FleetServer._build_hash_ring(replicas=4)
    assert ring == FleetServer._build_hash_ring(replicas=4)
    config = FleetConfig(replicas=4, routing="hash")
    fleet = FleetServer(config)            # never started: unit scope
    fleet._hash_ring = ring
    keys = [
        ModelKey(network="lenet_small", precision=p)
        for p in ("fixed8", "fixed16", "float32", "minifloat8")
    ]
    routes = {key: fleet._route(key) for key in keys}
    assert routes == {key: fleet._route(key) for key in keys}
    assert all(0 <= replica < 4 for replica in routes.values())
