"""Batcher semantics: lanes, deadlines, backpressure, drain."""

import threading
import time

import pytest

from repro.errors import ConfigurationError, ServerClosedError, ServerOverloadedError
from repro.serve import Batcher, BatchPolicy, ModelKey


class FakeItem:
    """Minimal Batchable: a model lane plus an arrival timestamp."""

    def __init__(self, key="lenet/fixed8", enqueued_at=None):
        network, precision = key.split("/")
        self.model_key = ModelKey(network=network, precision=precision)
        self.enqueued_at = time.monotonic() if enqueued_at is None else enqueued_at


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        BatchPolicy(max_batch_size=0)
    with pytest.raises(ConfigurationError):
        BatchPolicy(max_delay_ms=-1.0)
    with pytest.raises(ConfigurationError):
        Batcher(max_queue_depth=0)


def test_full_batch_released_immediately():
    batcher = Batcher(BatchPolicy(max_batch_size=4, max_delay_ms=10_000.0))
    for _ in range(4):
        batcher.put(FakeItem())
    start = time.monotonic()
    batch = batcher.next_batch(timeout=1.0)
    assert len(batch) == 4
    # a full batch must not wait for the deadline
    assert time.monotonic() - start < 1.0
    assert batcher.depth() == 0


def test_deadline_releases_partial_batch():
    batcher = Batcher(BatchPolicy(max_batch_size=32, max_delay_ms=20.0))
    batcher.put(FakeItem())
    batcher.put(FakeItem())
    batch = batcher.next_batch(timeout=2.0)
    assert len(batch) == 2


def test_lanes_never_mix_models():
    batcher = Batcher(BatchPolicy(max_batch_size=8, max_delay_ms=5.0))
    batcher.put(FakeItem("lenet/fixed8", enqueued_at=1.0))
    batcher.put(FakeItem("lenet/float32", enqueued_at=2.0))
    batcher.put(FakeItem("lenet/fixed8", enqueued_at=3.0))
    first = batcher.next_batch(timeout=1.0)
    assert [item.model_key.precision for item in first] == ["fixed8", "fixed8"]
    second = batcher.next_batch(timeout=1.0)
    assert [item.model_key.precision for item in second] == ["float32"]


def test_oldest_lane_served_first():
    batcher = Batcher(BatchPolicy(max_batch_size=8, max_delay_ms=0.0))
    batcher.put(FakeItem("lenet/float32", enqueued_at=5.0))
    batcher.put(FakeItem("alex/fixed4", enqueued_at=1.0))
    batch = batcher.next_batch(timeout=1.0)
    assert batch[0].model_key == ModelKey(network="alex", precision="fixed4")


def test_backpressure_rejects_when_full():
    batcher = Batcher(BatchPolicy(max_batch_size=4), max_queue_depth=2)
    batcher.put(FakeItem())
    batcher.put(FakeItem())
    with pytest.raises(ServerOverloadedError):
        batcher.put(FakeItem())
    # draining frees capacity again
    batcher.next_batch(timeout=1.0)
    batcher.put(FakeItem())


def test_closed_rejects_put_and_drains_remaining():
    batcher = Batcher(BatchPolicy(max_batch_size=4, max_delay_ms=10_000.0))
    batcher.put(FakeItem())
    batcher.close()
    with pytest.raises(ServerClosedError):
        batcher.put(FakeItem())
    # queued work remains available after close (graceful drain) ...
    assert len(batcher.next_batch(timeout=1.0)) == 1
    # ... and the exhausted, closed batcher signals worker exit
    assert batcher.next_batch(timeout=1.0) is None


def test_timeout_returns_empty_batch():
    batcher = Batcher()
    assert batcher.next_batch(timeout=0.01) == []


def test_pop_all_flushes_queue():
    batcher = Batcher()
    for _ in range(3):
        batcher.put(FakeItem())
    assert len(batcher.pop_all()) == 3
    assert batcher.depth() == 0


def test_next_batch_timeout_is_one_budget_not_per_restart():
    """Regression: losing a claimed lane must not restart the timeout.

    ``next_batch`` used to recompute its wait deadline on every pass of
    the outer loop, so a worker that repeatedly lost its claimed lane to
    ``pop_all()`` never timed out as long as puts kept trickling in.
    One shared budget means the call below returns ``[]`` after ~0.3 s
    even though the queue is refilled on a cadence shorter than that.
    """
    batcher = Batcher(BatchPolicy(max_batch_size=4, max_delay_ms=10_000.0))
    result = {}

    def worker():
        start = time.monotonic()
        result["batch"] = batcher.next_batch(timeout=0.3)
        result["elapsed"] = time.monotonic() - start

    thread = threading.Thread(target=worker)
    batcher.put(FakeItem())
    thread.start()
    for _ in range(6):
        time.sleep(0.2)
        batcher.pop_all()        # steal the lane the worker claimed
        if not thread.is_alive():
            break
        time.sleep(0.15)         # worker re-enters phase 1, queue empty
        if not thread.is_alive():
            break
        batcher.put(FakeItem())  # per-restart budgets would reset here
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert result["batch"] == []
    assert result["elapsed"] < 1.0


def test_expired_items_are_evicted_not_batched():
    fake = {"t": 0.0}
    expired = []
    batcher = Batcher(
        BatchPolicy(max_batch_size=8, max_delay_ms=0.0),
        on_expired=expired.extend,
        clock=lambda: fake["t"],
    )
    dead = FakeItem(enqueued_at=0.0)
    dead.deadline_at = 5.0
    live = FakeItem(enqueued_at=0.0)
    live.deadline_at = None
    batcher.put(dead)
    batcher.put(live)
    fake["t"] = 10.0  # both queued; only one has an (expired) deadline
    batch = batcher.next_batch(timeout=0.0)
    assert batch == [live]
    assert expired == [dead]
    assert batcher.depth() == 0


def test_queue_of_only_expired_items_drains_to_timeout():
    fake = {"t": 0.0}
    expired = []
    batcher = Batcher(on_expired=expired.extend, clock=lambda: fake["t"])
    item = FakeItem(enqueued_at=0.0)
    item.deadline_at = 1.0
    batcher.put(item)
    fake["t"] = 2.0
    assert batcher.next_batch(timeout=0.0) == []
    assert expired == [item]
    assert batcher.depth() == 0


def test_items_without_deadlines_never_pay_the_eviction_scan():
    batcher = Batcher()
    batcher.put(FakeItem())
    assert not batcher._track_deadlines  # hot path stays scan-free
    deadlined = FakeItem()
    deadlined.deadline_at = time.monotonic() + 60.0
    batcher.put(deadlined)
    assert batcher._track_deadlines


def test_concurrent_workers_partition_the_queue():
    batcher = Batcher(BatchPolicy(max_batch_size=8, max_delay_ms=5.0))
    collected = []
    lock = threading.Lock()

    def worker():
        while True:
            batch = batcher.next_batch(timeout=0.05)
            if batch is None:
                return
            with lock:
                collected.extend(batch)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    items = [FakeItem() for _ in range(40)]
    for item in items:
        batcher.put(item)
    time.sleep(0.1)
    batcher.close()
    for thread in threads:
        thread.join(timeout=5.0)
    # every request delivered exactly once
    assert len(collected) == 40
    assert {id(item) for item in collected} == {id(item) for item in items}


def test_requeue_prepends_in_original_order():
    batcher = Batcher(BatchPolicy(max_batch_size=8, max_delay_ms=1.0))
    recovered = [FakeItem() for _ in range(3)]
    later = FakeItem()
    batcher.put(later)
    # crash recovery puts the in-flight batch back at the lane front,
    # ahead of anything that arrived while it was out
    batcher.requeue(recovered)
    batch = batcher.next_batch(timeout=1.0)
    assert [id(i) for i in batch[:3]] == [id(i) for i in recovered]
    assert id(batch[3]) == id(later)


def test_requeue_works_on_a_closed_batcher():
    batcher = Batcher(BatchPolicy(max_batch_size=4, max_delay_ms=1.0))
    item = FakeItem()
    batcher.close()
    with pytest.raises(ServerClosedError):
        batcher.put(FakeItem())
    # recovered items were already admitted once and are owed a result,
    # so a drain-time crash must still be able to return them
    batcher.requeue([item])
    assert batcher.depth() == 1
    assert batcher.next_batch(timeout=1.0) == [item]


def test_requeue_bypasses_the_depth_bound():
    batcher = Batcher(BatchPolicy(max_batch_size=4, max_delay_ms=1.0),
                      max_queue_depth=1)
    batcher.put(FakeItem())
    with pytest.raises(ServerOverloadedError):
        batcher.put(FakeItem())
    batcher.requeue([FakeItem(), FakeItem()])
    assert batcher.depth() == 3
