"""Shared-memory lifecycle: no segment outlives its fleet.

Every test scans ``/dev/shm`` before and after the interesting event;
the front-end is the single owner of segment lifetime, so a leak here
means an orphan that survives until reboot on a real host.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve import FleetConfig, FleetServer, scan_segments

needs_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no scannable /dev/shm mount"
)

SMALL = dict(
    warm=[("lenet_small", "fixed8")], calibration_images=8, seed=0
)


@needs_shm
def test_clean_shutdown_unlinks_every_segment():
    fleet = FleetServer(FleetConfig(replicas=1, ring_slots=2, **SMALL))
    fleet.start()
    token = fleet._token
    try:
        assert len(scan_segments(token)) == 2   # 1 replica x 2 ring slots
        future = fleet.submit(
            np.zeros((1, 28, 28), dtype=np.float32), "lenet_small", "fixed8"
        )
        future.result(timeout=60.0)
    finally:
        fleet.stop()
    assert scan_segments(token) == []


@needs_shm
def test_replica_crash_reuses_segments_and_stop_unlinks():
    fleet = FleetServer(FleetConfig(
        replicas=1, ring_slots=2, heartbeat_timeout_s=10.0, **SMALL
    ))
    fleet.start()
    token = fleet._token
    try:
        before = scan_segments(token)
        assert len(before) == 2
        fleet.kill_replica(0)
        deadline = time.monotonic() + 120.0
        while fleet.restarts < 1 or fleet.ready_replicas() < 1:
            assert time.monotonic() < deadline, "replica never rejoined"
            time.sleep(0.05)
        # a dying replica must not unlink (it only ever attaches) and
        # the respawned incarnation rejoins the *same* segments
        assert scan_segments(token) == before
        future = fleet.submit(
            np.zeros((1, 28, 28), dtype=np.float32), "lenet_small", "fixed8"
        )
        future.result(timeout=60.0)
    finally:
        fleet.stop()
    assert scan_segments(token) == []


FRONTEND_SCRIPT = """
import sys, time
import numpy as np
from repro.serve import FleetConfig, FleetServer

fleet = FleetServer(FleetConfig(
    replicas=1, ring_slots=2, warm=[("lenet_small", "fixed8")],
    calibration_images=8, seed=0,
))
fleet.start(install_signal_handler=True)
print(fleet._token, flush=True)
while True:   # serve until SIGTERM
    time.sleep(0.1)
"""


@needs_shm
def test_frontend_sigterm_unlinks_segments():
    """SIGTERM to the front-end process must not orphan /dev/shm."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", FRONTEND_SCRIPT],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    try:
        token = proc.stdout.readline().strip()
        assert token, "front-end never became ready"
        assert len(scan_segments(token)) == 2
        proc.send_signal(signal.SIGTERM)
        # the emergency handler unlinks, then exits 128+SIGTERM
        assert proc.wait(timeout=60.0) == 128 + signal.SIGTERM
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
    assert scan_segments(token) == []
