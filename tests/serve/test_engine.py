"""InferenceServer: correctness under batching, backpressure, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.data import load_dataset
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
    ShapeError,
    WorkerStallError,
)
from repro.resilience import DegradePolicy, FaultInjector
from repro.serve import InferenceServer, ModelStore, run_closed_loop


@pytest.fixture(scope="module")
def digits_images():
    split = load_dataset("digits", n_train=32, n_test=64, seed=0)
    return split.test.images


@pytest.fixture(scope="module")
def calibration(digits_images):
    return {"digits": digits_images[:32]}


@pytest.fixture()
def store(calibration):
    return ModelStore(calibration_data=calibration, calibration_images=32)


def test_batched_results_match_direct_inference(store, digits_images):
    servable = store.warm("lenet_small", "fixed8")
    expected = servable.forward(digits_images[:24])
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        futures = [
            server.submit(digits_images[i], "lenet_small", "fixed8")
            for i in range(24)
        ]
        results = [future.result(timeout=30.0) for future in futures]
    for index, result in enumerate(results):
        # tolerance: BLAS accumulation order varies with batch size
        np.testing.assert_allclose(
            result.logits, expected[index], rtol=0, atol=1e-5
        )
        assert result.batch_size >= 1
        assert result.latency_ms >= result.queue_ms >= 0.0
        assert result.energy_uj == servable.energy_uj_per_image


def test_mixed_precision_traffic_stays_separated(store, digits_images):
    int8 = store.warm("lenet_small", "fixed8")
    full = store.warm("lenet_small", "float32")
    with InferenceServer(store, workers=2, max_batch_size=4) as server:
        futures = [
            server.submit(
                digits_images[i],
                "lenet_small",
                "fixed8" if i % 2 else "float32",
            )
            for i in range(16)
        ]
        results = [future.result(timeout=30.0) for future in futures]
    for i, result in enumerate(results):
        reference = int8 if i % 2 else full
        other = full if i % 2 else int8
        # BLAS accumulation order varies with batch size, so float32 logits
        # can drift ~1e-7 between served batches and a batch-of-1 reference;
        # the int8/float32 quantization gap is orders of magnitude larger.
        np.testing.assert_allclose(
            result.logits,
            reference.forward(digits_images[i : i + 1])[0],
            rtol=0,
            atol=1e-5,
        )
        assert not np.allclose(
            result.logits,
            other.forward(digits_images[i : i + 1])[0],
            rtol=0,
            atol=1e-5,
        )
        assert result.energy_uj == reference.energy_uj_per_image
    # int8 requests must be cheaper than float32 on the modeled accelerator
    assert int8.energy_uj_per_image < full.energy_uj_per_image


def test_backpressure_rejects_before_admitting(store, digits_images):
    server = InferenceServer(store, workers=1, max_queue_depth=2)
    server.submit(digits_images[0], "lenet_small", "fixed8")
    server.submit(digits_images[1], "lenet_small", "fixed8")
    with pytest.raises(ServerOverloadedError):
        server.submit(digits_images[2], "lenet_small", "fixed8")
    assert server.report().rejected == 1
    server.stop(drain=False)


def test_stop_without_drain_fails_queued_requests(store, digits_images):
    server = InferenceServer(store, workers=1)
    futures = [
        server.submit(digits_images[i], "lenet_small", "fixed8") for i in range(3)
    ]
    server.stop(drain=False)
    for future in futures:
        with pytest.raises(ServerClosedError):
            future.result(timeout=1.0)
    assert server.report().failed == 3


def test_submit_after_stop_raises(store, digits_images):
    server = InferenceServer(store, workers=1).start()
    server.stop()
    with pytest.raises(ServerClosedError):
        server.submit(digits_images[0], "lenet_small", "fixed8")


def test_context_manager_drains_everything(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        futures = [
            server.submit(digits_images[i % 8], "lenet_small", "fixed8")
            for i in range(40)
        ]
    assert all(future.done() for future in futures)
    assert server.report().completed == 40


def test_submit_validates_image_rank(store, digits_images):
    server = InferenceServer(store, workers=1)
    with pytest.raises(ConfigurationError):
        server.submit(digits_images[:2], "lenet_small", "fixed8")  # batched
    server.stop(drain=False)


def test_worker_errors_propagate_to_futures(store):
    wrong_channels = np.zeros((3, 28, 28), dtype=np.float32)
    with InferenceServer(store, workers=1) as server:
        future = server.submit(wrong_channels, "lenet_small", "fixed8")
        with pytest.raises(ShapeError):
            future.result(timeout=30.0)
    assert server.report().failed >= 1


def slow_down(servable, delay_s):
    """Wrap a servable's forward so each batch takes ``delay_s`` extra."""
    real_forward = servable.forward

    def slow_forward(batch):
        time.sleep(delay_s)
        return real_forward(batch)

    servable.forward = slow_forward


def test_deadline_evicts_queued_requests_under_a_slow_servable(
    store, digits_images
):
    servable = store.warm("lenet_small", "fixed8")
    slow_down(servable, delay_s=0.15)
    with InferenceServer(store, workers=1, max_batch_size=1,
                         max_delay_ms=0.0) as server:
        head = server.submit(digits_images[0], "lenet_small", "fixed8")
        late = [
            server.submit(
                digits_images[i], "lenet_small", "fixed8", deadline_ms=50.0
            )
            for i in range(1, 3)
        ]
        assert head.result(timeout=10.0).request_id == 0
        for future in late:
            # queued behind a 150 ms batch with a 50 ms budget: evicted
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10.0)
    report = server.report()
    assert report.completed == 1
    assert report.deadline_expired == 2
    assert report.failed == 0  # eviction is not a server failure


def test_deadline_ms_must_be_positive(store, digits_images):
    server = InferenceServer(store, workers=1)
    with pytest.raises(ConfigurationError):
        server.submit(digits_images[0], "lenet_small", "fixed8",
                      deadline_ms=0.0)
    server.stop(drain=False)


def test_generous_deadline_never_fires(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        futures = [
            server.submit(digits_images[i], "lenet_small", "fixed8",
                          deadline_ms=30_000.0)
            for i in range(16)
        ]
        for future in futures:
            future.result(timeout=30.0)
    assert server.report().deadline_expired == 0
    assert server.report().completed == 16


def test_overload_degrades_to_lower_precision(store, digits_images):
    full = store.warm("lenet_small", "fixed8")
    low = store.warm("lenet_small", "fixed4")
    policy = DegradePolicy(watermark=2, fallback={"fixed8": "fixed4"})
    server = InferenceServer(store, workers=1, degrade=policy)
    # the server is not started yet, so submissions pile up in the queue
    futures = [
        server.submit(digits_images[i], "lenet_small", "fixed8")
        for i in range(4)
    ]
    server.start()
    results = [future.result(timeout=30.0) for future in futures]
    server.stop()
    # below the watermark: served as asked; above it: degraded
    assert [r.model_key.precision for r in results] == [
        "fixed8", "fixed8", "fixed4", "fixed4"
    ]
    # degraded responses carry the fallback model's (lower) energy
    assert results[2].energy_uj == low.energy_uj_per_image
    assert results[0].energy_uj == full.energy_uj_per_image
    assert low.energy_uj_per_image < full.energy_uj_per_image
    assert server.report().degraded == 2


def test_degradation_leaves_unmapped_precisions_alone(store, digits_images):
    policy = DegradePolicy(watermark=1, fallback={"fixed8": "fixed4"})
    store.warm("lenet_small", "float32")
    server = InferenceServer(store, workers=1, degrade=policy)
    futures = [
        server.submit(digits_images[i], "lenet_small", "float32")
        for i in range(3)
    ]
    server.start()
    results = [future.result(timeout=30.0) for future in futures]
    server.stop()
    assert all(r.model_key.precision == "float32" for r in results)
    assert server.report().degraded == 0


def test_stop_deadline_is_shared_and_stalls_are_loud(store, digits_images):
    """Regression: ``stop(timeout=...)`` used to give *each* worker the
    full timeout and then mark the server stopped without checking that
    the joins succeeded — a wedged worker was silently leaked."""
    release = threading.Event()
    servable = store.warm("lenet_small", "fixed8")
    real_forward = servable.forward

    def blocking_forward(batch):
        release.wait(10.0)
        return real_forward(batch)

    servable.forward = blocking_forward
    server = InferenceServer(store, workers=2, max_batch_size=1).start()
    future = server.submit(digits_images[0], "lenet_small", "fixed8")
    time.sleep(0.05)  # let a worker enter the blocked forward
    started = time.monotonic()
    with pytest.raises(WorkerStallError):
        server.stop(timeout=0.2)
    # one shared deadline, not 0.2 s per worker
    assert time.monotonic() - started < 2.0
    assert server.stats.metrics.counter("serve.leaked_workers").value >= 1
    server.stop()  # repeat stop is a no-op, not a second error
    release.set()
    future.result(timeout=10.0)


def test_faults_parameter_overrides_process_injector(store, digits_images):
    injector = FaultInjector().arm("engine.forward", rate=1.0, max_fires=1)
    with InferenceServer(store, workers=1, faults=injector) as server:
        first = server.submit(digits_images[0], "lenet_small", "fixed8")
        with pytest.raises(Exception, match="engine.forward"):
            first.result(timeout=10.0)
        second = server.submit(digits_images[1], "lenet_small", "fixed8")
        second.result(timeout=10.0)  # fault exhausted: traffic recovers
    assert server.report().failed == 1
    assert server.report().completed == 1


def test_closed_loop_load_generator(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        outcome = run_closed_loop(
            server,
            digits_images,
            "lenet_small",
            "fixed8",
            n_requests=48,
            concurrency=8,
        )
    assert outcome.submitted == 48
    assert outcome.client_errors == 0
    report = outcome.report
    assert report.completed == 48
    assert report.throughput_ips > 0
    assert report.energy_uj_total == pytest.approx(
        48 * report.energy_uj_per_image
    )
    assert sum(size * n for size, n in report.batch_histogram.items()) == 48
