"""InferenceServer: correctness under batching, backpressure, shutdown."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.errors import (
    ConfigurationError,
    ServerClosedError,
    ServerOverloadedError,
    ShapeError,
)
from repro.serve import InferenceServer, ModelStore, run_closed_loop


@pytest.fixture(scope="module")
def digits_images():
    split = load_dataset("digits", n_train=32, n_test=64, seed=0)
    return split.test.images


@pytest.fixture(scope="module")
def calibration(digits_images):
    return {"digits": digits_images[:32]}


@pytest.fixture()
def store(calibration):
    return ModelStore(calibration_data=calibration, calibration_images=32)


def test_batched_results_match_direct_inference(store, digits_images):
    servable = store.warm("lenet_small", "fixed8")
    expected = servable.forward(digits_images[:24])
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        futures = [
            server.submit(digits_images[i], "lenet_small", "fixed8")
            for i in range(24)
        ]
        results = [future.result(timeout=30.0) for future in futures]
    for index, result in enumerate(results):
        # tolerance: BLAS accumulation order varies with batch size
        np.testing.assert_allclose(
            result.logits, expected[index], rtol=0, atol=1e-5
        )
        assert result.batch_size >= 1
        assert result.latency_ms >= result.queue_ms >= 0.0
        assert result.energy_uj == servable.energy_uj_per_image


def test_mixed_precision_traffic_stays_separated(store, digits_images):
    int8 = store.warm("lenet_small", "fixed8")
    full = store.warm("lenet_small", "float32")
    with InferenceServer(store, workers=2, max_batch_size=4) as server:
        futures = [
            server.submit(
                digits_images[i],
                "lenet_small",
                "fixed8" if i % 2 else "float32",
            )
            for i in range(16)
        ]
        results = [future.result(timeout=30.0) for future in futures]
    for i, result in enumerate(results):
        reference = int8 if i % 2 else full
        other = full if i % 2 else int8
        # BLAS accumulation order varies with batch size, so float32 logits
        # can drift ~1e-7 between served batches and a batch-of-1 reference;
        # the int8/float32 quantization gap is orders of magnitude larger.
        np.testing.assert_allclose(
            result.logits,
            reference.forward(digits_images[i : i + 1])[0],
            rtol=0,
            atol=1e-5,
        )
        assert not np.allclose(
            result.logits,
            other.forward(digits_images[i : i + 1])[0],
            rtol=0,
            atol=1e-5,
        )
        assert result.energy_uj == reference.energy_uj_per_image
    # int8 requests must be cheaper than float32 on the modeled accelerator
    assert int8.energy_uj_per_image < full.energy_uj_per_image


def test_backpressure_rejects_before_admitting(store, digits_images):
    server = InferenceServer(store, workers=1, max_queue_depth=2)
    server.submit(digits_images[0], "lenet_small", "fixed8")
    server.submit(digits_images[1], "lenet_small", "fixed8")
    with pytest.raises(ServerOverloadedError):
        server.submit(digits_images[2], "lenet_small", "fixed8")
    assert server.report().rejected == 1
    server.stop(drain=False)


def test_stop_without_drain_fails_queued_requests(store, digits_images):
    server = InferenceServer(store, workers=1)
    futures = [
        server.submit(digits_images[i], "lenet_small", "fixed8") for i in range(3)
    ]
    server.stop(drain=False)
    for future in futures:
        with pytest.raises(ServerClosedError):
            future.result(timeout=1.0)
    assert server.report().failed == 3


def test_submit_after_stop_raises(store, digits_images):
    server = InferenceServer(store, workers=1).start()
    server.stop()
    with pytest.raises(ServerClosedError):
        server.submit(digits_images[0], "lenet_small", "fixed8")


def test_context_manager_drains_everything(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        futures = [
            server.submit(digits_images[i % 8], "lenet_small", "fixed8")
            for i in range(40)
        ]
    assert all(future.done() for future in futures)
    assert server.report().completed == 40


def test_submit_validates_image_rank(store, digits_images):
    server = InferenceServer(store, workers=1)
    with pytest.raises(ConfigurationError):
        server.submit(digits_images[:2], "lenet_small", "fixed8")  # batched
    server.stop(drain=False)


def test_worker_errors_propagate_to_futures(store):
    wrong_channels = np.zeros((3, 28, 28), dtype=np.float32)
    with InferenceServer(store, workers=1) as server:
        future = server.submit(wrong_channels, "lenet_small", "fixed8")
        with pytest.raises(ShapeError):
            future.result(timeout=30.0)
    assert server.report().failed >= 1


def test_closed_loop_load_generator(store, digits_images):
    with InferenceServer(store, workers=2, max_batch_size=8) as server:
        outcome = run_closed_loop(
            server,
            digits_images,
            "lenet_small",
            "fixed8",
            n_requests=48,
            concurrency=8,
        )
    assert outcome.submitted == 48
    assert outcome.client_errors == 0
    report = outcome.report
    assert report.completed == 48
    assert report.throughput_ips > 0
    assert report.energy_uj_total == pytest.approx(
        48 * report.energy_uj_per_image
    )
    assert sum(size * n for size, n in report.batch_histogram.items()) == 48
