"""Clock-frequency scaling tests (design-space extension)."""

import pytest

from repro import core, hw
from repro.errors import HardwareModelError
from repro.hw.accelerator import Accelerator
from repro.hw.tech import TECH_65NM
from repro.zoo import build_network, network_info


def test_with_clock_scales_dynamic_terms():
    fast = TECH_65NM.with_clock(500e6)
    assert fast.clock_hz == 500e6
    assert fast.logic_power_per_mm2 == pytest.approx(
        2 * TECH_65NM.logic_power_per_mm2
    )
    assert fast.sram_access_coeff == pytest.approx(2 * TECH_65NM.sram_access_coeff)
    # static terms unchanged
    assert fast.sram_leakage_per_mm2 == TECH_65NM.sram_leakage_per_mm2
    assert fast.sram_area_per_bit == TECH_65NM.sram_area_per_bit


def test_with_clock_identity():
    same = TECH_65NM.with_clock(TECH_65NM.clock_hz)
    assert same.logic_power_per_mm2 == pytest.approx(TECH_65NM.logic_power_per_mm2)


def test_with_clock_invalid():
    with pytest.raises(HardwareModelError):
        TECH_65NM.with_clock(0.0)


def test_area_independent_of_clock():
    spec = core.get_precision("fixed16")
    base = Accelerator(spec)
    fast = Accelerator(spec, tech=TECH_65NM.with_clock(500e6))
    assert fast.area_mm2 == pytest.approx(base.area_mm2)
    assert fast.power_mw > base.power_mw


def test_energy_tradeoff_with_clock():
    """Halving the clock doubles runtime; dynamic energy is constant
    while leakage energy doubles, so total energy rises slightly and
    runtime doubles exactly."""
    spec = core.get_precision("fixed16")
    info = network_info("lenet")
    net = build_network("lenet")
    base = hw.EnergyModel().evaluate(net, info.input_shape, spec)
    slow_model = hw.EnergyModel(tech=TECH_65NM.with_clock(125e6))
    slow = slow_model.evaluate(net, info.input_shape, spec)
    assert slow.runtime_us == pytest.approx(2 * base.runtime_us)
    assert slow.energy_uj > base.energy_uj
    assert slow.energy_uj < 2 * base.energy_uj
