"""Additional energy-model checks: Table IV/V energy columns."""

import pytest

from repro import core, hw
from repro.zoo import build_network, network_info

#: (network, precision) -> paper per-image energy (uJ), Tables IV & V.
PAPER_ENERGIES = {
    ("lenet", "fixed16"): 24.60,
    ("lenet", "fixed8"): 8.86,
    ("lenet", "pow2"): 8.42,
    ("lenet", "binary"): 3.56,
    ("convnet", "fixed16"): 314.05,
    ("convnet", "fixed8"): 120.14,
    ("convnet", "pow2"): 114.70,
    ("alex", "fixed16"): 136.61,
    ("alex", "fixed8"): 49.22,
    ("alex", "pow2"): 46.77,
    ("alex", "binary"): 19.79,
    ("alex+", "pow2"): 168.21,
    ("alex+", "binary"): 71.18,
}


@pytest.fixture(scope="module")
def model():
    return hw.EnergyModel()


@pytest.mark.parametrize("network_name,key", sorted(PAPER_ENERGIES))
def test_quantized_energy_columns_within_25pct(model, network_name, key):
    """Quantized energies inherit both the cycle-model and the power-
    model residuals; 25 % bounds every Table IV/V cell we can compare
    (most land well inside — the shape tests pin the orderings)."""
    info = network_info(network_name)
    net = build_network(network_name)
    report = model.evaluate(net, info.input_shape, core.get_precision(key))
    paper = PAPER_ENERGIES[(network_name, key)]
    assert report.energy_uj == pytest.approx(paper, rel=0.25), (
        f"{network_name}/{key}: {report.energy_uj:.1f} vs paper {paper}"
    )


def test_runtime_nearly_constant_across_precisions(model):
    """Paper: 'as we keep the frequency constant the processing time
    per image changes very marginally among different precisions'."""
    info = network_info("alex")
    net = build_network("alex")
    runtimes = [
        model.evaluate(net, info.input_shape, spec).runtime_us
        for spec in core.PAPER_PRECISIONS
    ]
    assert max(runtimes) / min(runtimes) < 1.01
