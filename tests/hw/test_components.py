"""Datapath component model tests."""

import pytest

from repro import core
from repro.errors import HardwareModelError
from repro.hw.components import (
    AdderTree,
    AreaPower,
    BinaryWeightBlock,
    FixedPointWeightBlock,
    FloatingPointWeightBlock,
    NonlinearityUnit,
    PipelineRegisters,
    Pow2WeightBlock,
    make_weight_block,
)
from repro.hw.tech import TECH_65NM


def test_area_power_addition_and_scaling():
    a = AreaPower(1.0, 10.0)
    b = AreaPower(2.0, 20.0)
    total = a + b
    assert total.area_mm2 == 3.0 and total.power_mw == 30.0
    assert a.scaled(4).area_mm2 == 4.0


def test_weight_block_dispatch():
    assert isinstance(
        make_weight_block(core.get_precision("float32")), FloatingPointWeightBlock
    )
    assert isinstance(
        make_weight_block(core.get_precision("fixed8")), FixedPointWeightBlock
    )
    assert isinstance(make_weight_block(core.get_precision("pow2")), Pow2WeightBlock)
    assert isinstance(
        make_weight_block(core.get_precision("binary")), BinaryWeightBlock
    )


def test_stage1_cost_ordering_matches_paper_figure2():
    """Multiplier > shifter > negate, and float costs the most."""
    fixed16 = FixedPointWeightBlock(16, 16).unit_cost(TECH_65NM)
    pow2 = Pow2WeightBlock(6, 16).unit_cost(TECH_65NM)
    binary = BinaryWeightBlock(1, 16).unit_cost(TECH_65NM)
    fp = FloatingPointWeightBlock().unit_cost(TECH_65NM)
    assert fp.area_mm2 > fixed16.area_mm2 > pow2.area_mm2 > binary.area_mm2
    assert fp.power_mw > fixed16.power_mw > pow2.power_mw > binary.power_mw


def test_fixed_multiplier_area_quadratic_in_bits():
    small = FixedPointWeightBlock(8, 8).unit_cost(TECH_65NM).area_mm2
    large = FixedPointWeightBlock(16, 16).unit_cost(TECH_65NM).area_mm2
    assert large == pytest.approx(4 * small)


def test_accumulator_bits_per_kind():
    assert FixedPointWeightBlock(8, 8).accumulator_bits == 24
    assert FloatingPointWeightBlock().accumulator_bits == 32
    assert Pow2WeightBlock(6, 16).accumulator_bits == 32
    assert BinaryWeightBlock(1, 16).accumulator_bits == 24


def test_adder_tree_count():
    tree = AdderTree(fan_in=16, operand_bits=32)
    assert tree.adder_count == 15


def test_adder_tree_fp_overhead():
    plain = AdderTree(16, 32).cost(TECH_65NM).area_mm2
    fp = AdderTree(16, 32, floating_point=True).cost(TECH_65NM).area_mm2
    assert fp > plain


def test_adder_tree_validation():
    with pytest.raises(HardwareModelError):
        AdderTree(fan_in=1, operand_bits=16)


def test_nonlinearity_and_registers_positive():
    assert NonlinearityUnit(24).cost(TECH_65NM).area_mm2 > 0
    assert PipelineRegisters(1000).cost(TECH_65NM).area_mm2 > 0
    assert PipelineRegisters(0).cost(TECH_65NM).area_mm2 == 0


def test_invalid_bit_widths():
    with pytest.raises(HardwareModelError):
        FixedPointWeightBlock(0, 8)
    with pytest.raises(HardwareModelError):
        NonlinearityUnit(0)
    with pytest.raises(HardwareModelError):
        PipelineRegisters(-1)
