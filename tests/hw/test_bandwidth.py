"""Off-chip traffic model tests."""

import pytest

from repro import core
from repro.errors import HardwareModelError
from repro.hw.accelerator import Accelerator
from repro.hw.bandwidth import traffic_report
from repro.zoo import build_network, network_info


@pytest.fixture(scope="module")
def lenet():
    info = network_info("lenet")
    return build_network("lenet"), info.input_shape


def report_for(lenet, key="fixed16", batch_size=1):
    net, shape = lenet
    return traffic_report(net, shape, Accelerator.for_precision(key), batch_size)


def test_traffic_covers_compute_layers(lenet):
    report = report_for(lenet)
    assert [layer.name for layer in report.layers] == ["conv1", "conv2", "ip1", "ip2"]
    assert report.total_bits_per_image == sum(
        layer.total_bits for layer in report.layers
    )


def test_weight_traffic_scales_with_precision(lenet):
    full = report_for(lenet, "fixed32")
    half = report_for(lenet, "fixed16")
    binary = report_for(lenet, "binary")
    assert full.bytes_per_image > half.bytes_per_image > binary.bytes_per_image
    # LeNet ip1 dominates traffic; weights shrink 32x at binary but
    # activations stay at 16 bits, so the overall reduction is < 32x
    assert 2.0 < binary.reduction_vs(full) < 32.0


def test_residency_flag(lenet):
    report = report_for(lenet)
    by_name = {layer.name: layer for layer in report.layers}
    # SB holds 65536 weights: LeNet convs fit, ip1 (400k weights) does not
    assert by_name["conv1"].resident
    assert by_name["conv2"].resident
    assert not by_name["ip1"].resident


def test_batching_amortizes_resident_weights(lenet):
    single = report_for(lenet, batch_size=1)
    batched = report_for(lenet, batch_size=16)
    by_name_single = {l.name: l for l in single.layers}
    by_name_batched = {l.name: l for l in batched.layers}
    # resident conv weights amortize
    assert (
        by_name_batched["conv1"].weight_bits
        < by_name_single["conv1"].weight_bits
    )
    # non-resident ip1 weights are re-streamed every image regardless
    assert (
        by_name_batched["ip1"].weight_bits == by_name_single["ip1"].weight_bits
    )
    # activation traffic is per-image and unchanged
    assert by_name_batched["conv1"].input_bits == by_name_single["conv1"].input_bits


def test_bandwidth_positive_and_finite(lenet):
    report = report_for(lenet)
    assert 0 < report.required_bandwidth_gbps < 1000


def test_invalid_batch_size(lenet):
    with pytest.raises(HardwareModelError):
        report_for(lenet, batch_size=0)
