"""Accelerator assembly tests."""

import pytest

from repro import core
from repro.core.precision import PAPER_PRECISIONS
from repro.errors import ConfigError, ConfigurationError, HardwareModelError
from repro.hw.accelerator import Accelerator, AcceleratorConfig


def test_for_precision_convenience():
    acc = Accelerator.for_precision("fixed8")
    assert acc.spec.key == "fixed8"


def test_buffer_geometry_follows_precision():
    acc = Accelerator.for_precision("pow2")
    assert acc.weight_buffer.bits_per_word == 6     # weight bits
    assert acc.input_buffer.bits_per_word == 16     # input bits
    assert acc.output_buffer.bits_per_word == 16


def test_breakdown_sums_to_total():
    acc = Accelerator.for_precision("fixed16")
    parts = acc.breakdown()
    assert sum(p.area_mm2 for p in parts.values()) == pytest.approx(acc.area_mm2)
    assert sum(p.power_mw for p in parts.values()) == pytest.approx(acc.power_mw)


def test_area_monotone_over_fixed_point_widths():
    areas = [Accelerator.for_precision(k).area_mm2
             for k in ("fixed32", "fixed16", "fixed8", "fixed4")]
    assert all(a > b for a, b in zip(areas, areas[1:]))
    powers = [Accelerator.for_precision(k).power_mw
              for k in ("fixed32", "fixed16", "fixed8", "fixed4")]
    assert all(a > b for a, b in zip(powers, powers[1:]))


def test_float_most_expensive_binary_cheapest():
    all_costs = {k.key: Accelerator(k) for k in PAPER_PRECISIONS}
    float_area = all_costs["float32"].area_mm2
    binary_area = all_costs["binary"].area_mm2
    assert all(float_area >= acc.area_mm2 for acc in all_costs.values())
    assert all(binary_area <= acc.area_mm2 for acc in all_costs.values())


def test_memory_fraction_in_papers_window():
    """Section V-B: buffers are 76-96 % of area and 75-93 % of power."""
    for spec in PAPER_PRECISIONS:
        fractions = Accelerator(spec).memory_fraction()
        assert 0.74 <= fractions["area"] <= 0.97, spec.key
        assert 0.70 <= fractions["power"] <= 0.95, spec.key


def test_macs_per_cycle():
    assert Accelerator.for_precision("fixed16").macs_per_cycle == 256


def test_custom_config_buffer_scaling():
    small = Accelerator.for_precision(
        "fixed16", config=AcceleratorConfig(weight_buffer_words=1024)
    )
    default = Accelerator.for_precision("fixed16")
    assert small.area_mm2 < default.area_mm2


def test_invalid_config():
    with pytest.raises(HardwareModelError):
        AcceleratorConfig(neurons=0)
    with pytest.raises(HardwareModelError):
        AcceleratorConfig(dataflow_efficiency=0.0)
    with pytest.raises(HardwareModelError):
        AcceleratorConfig(layer_startup_cycles=-1)
    with pytest.raises(HardwareModelError):
        AcceleratorConfig(weight_buffer_words=0)


@pytest.mark.parametrize(
    "kwargs, field",
    [
        ({"neurons": 0}, "neurons"),
        ({"synapses": -3}, "synapses"),
        ({"input_buffer_words": 0}, "input_buffer_words"),
        ({"output_buffer_words": -1}, "output_buffer_words"),
        ({"weight_buffer_words": 0}, "weight_buffer_words"),
        ({"dataflow_efficiency": 0.0}, "dataflow_efficiency"),
        ({"dataflow_efficiency": 1.5}, "dataflow_efficiency"),
        ({"layer_startup_cycles": -1}, "layer_startup_cycles"),
    ],
)
def test_invalid_config_names_offending_field(kwargs, field):
    with pytest.raises(ConfigError) as excinfo:
        AcceleratorConfig(**kwargs)
    assert excinfo.value.field == field
    assert field in str(excinfo.value)


def test_config_error_is_both_config_and_hardware_error():
    """Back-compat: callers catching either hierarchy keep working."""
    with pytest.raises(ConfigurationError):
        AcceleratorConfig(neurons=0)
    with pytest.raises(HardwareModelError):
        AcceleratorConfig(neurons=0)
