"""Tile scheduler tests."""

import math

import numpy as np
import pytest

from repro import nn
from repro.errors import HardwareModelError, SchedulingError
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.scheduler import LayerWork, TileScheduler
from tests.conftest import make_tiny_cnn


def make_scheduler(key="fixed16", **config_kwargs):
    config = AcceleratorConfig(**config_kwargs)
    return TileScheduler(Accelerator.for_precision(key, config=config))


def test_schedule_covers_compute_layers(tiny_cnn):
    schedule = make_scheduler().schedule(tiny_cnn, (1, 28, 28))
    assert [layer.name for layer in schedule.layers] == ["conv1", "conv2", "ip1"]
    assert schedule.network_name == "tiny_cnn"


def test_cycle_count_formula():
    scheduler = make_scheduler(dataflow_efficiency=1.0, layer_startup_cycles=0)
    gen = np.random.default_rng(0)
    net = nn.Sequential([nn.Dense(256, 16, name="fc", rng=gen)])
    schedule = scheduler.schedule(net, (256,))
    # 256*16 = 4096 MACs on a 256 MAC/cycle tile, plus pipeline depth
    assert schedule.layers[0].cycles == 16 + scheduler.accelerator.nfu.pipeline_depth


def test_efficiency_increases_cycles():
    ideal = make_scheduler(dataflow_efficiency=1.0)
    real = make_scheduler(dataflow_efficiency=0.5)
    net = make_tiny_cnn()
    fast = ideal.schedule(net, (1, 28, 28)).total_cycles
    slow = real.schedule(net, (1, 28, 28)).total_cycles
    assert slow > fast


def test_total_macs_matches_layer_sum(tiny_cnn):
    schedule = make_scheduler().schedule(tiny_cnn, (1, 28, 28))
    expected = sum(
        layer.macs((1, 28, 28) if layer.name == "conv1" else shape)
        for layer, shape in zip(
            tiny_cnn.compute_layers(),
            [(1, 28, 28), (4, 12, 12), (128,)],
        )
    )
    assert schedule.total_macs == expected


def test_runtime_seconds():
    scheduler = make_scheduler()
    net = make_tiny_cnn()
    schedule = scheduler.schedule(net, (1, 28, 28))
    assert schedule.runtime_s(250e6) == pytest.approx(schedule.total_cycles / 250e6)


def test_binary_pipeline_reduces_startup():
    """Merged two-stage NFU shaves one fill cycle per layer."""
    net = make_tiny_cnn()
    fixed = make_scheduler("fixed16").schedule(net, (1, 28, 28))
    binary = make_scheduler("binary").schedule(net, (1, 28, 28))
    layer_count = len(fixed.layers)
    assert fixed.total_cycles - binary.total_cycles == layer_count


def test_layer_work_records_sizes(tiny_cnn):
    schedule = make_scheduler().schedule(tiny_cnn, (1, 28, 28))
    conv1 = schedule.layers[0]
    assert conv1.kind == "conv"
    assert conv1.weights == 4 * 25 + 4
    assert conv1.input_values == 28 * 28
    assert conv1.output_values == 4 * 24 * 24
    assert 0 < conv1.utilization <= 256


def test_network_without_compute_layers_rejected():
    net = nn.Sequential([nn.ReLU()])
    with pytest.raises(HardwareModelError):
        make_scheduler().schedule(net, (1, 8, 8))


# ----------------------------------------------------------------------
# degenerate inputs raise typed SchedulingError
# ----------------------------------------------------------------------
def test_empty_network_raises_scheduling_error():
    """A network with nothing to schedule raises a typed, named error
    rather than returning a silent zero-cycle schedule."""
    net = nn.Sequential([nn.ReLU()], name="empty")
    with pytest.raises(SchedulingError, match="no compute layers"):
        make_scheduler().schedule(net, (1, 8, 8))


@pytest.mark.parametrize("shape", [(), (0, 28, 28), (1, -4, 28)])
def test_degenerate_input_shape_rejected(shape):
    with pytest.raises(SchedulingError, match="input shape"):
        make_scheduler().schedule(make_tiny_cnn(), shape)


def test_tile_working_set_must_fit_half_bank():
    """A buffer too small to double-buffer one tile pass is rejected
    at scheduler construction, naming the offending buffer."""
    with pytest.raises(SchedulingError, match="weight_buffer_words"):
        # one 16x16 weight tile needs 256 words per bank; 256 words
        # total leaves only 128 per bank
        make_scheduler(weight_buffer_words=256)
    with pytest.raises(SchedulingError, match="input_buffer_words"):
        make_scheduler(input_buffer_words=16)
    with pytest.raises(SchedulingError, match="output_buffer_words"):
        make_scheduler(output_buffer_words=8)
    # exactly one tile pass per bank is the legal minimum
    make_scheduler(
        weight_buffer_words=512, input_buffer_words=32,
        output_buffer_words=32,
    )


def test_utilization_clamped_to_unit_interval(tiny_cnn):
    schedule = make_scheduler().schedule(tiny_cnn, (1, 28, 28))
    for layer in schedule.layers:
        assert 0.0 <= layer.utilization <= 1.0
    # non-divisible tile dims: 100 MACs on a 256-wide tile in 1 cycle
    # would read as 39% — a hand-built record claiming more MACs than
    # peak*cycles clamps instead of reporting >100%
    inflated = LayerWork(
        name="x", kind="dense", macs=10_000, weights=1, input_values=1,
        output_values=1, cycles=1, peak_macs_per_cycle=256,
    )
    assert inflated.utilization == 1.0


def test_legacy_layer_work_without_peak_still_bounded():
    legacy = LayerWork(
        name="x", kind="dense", macs=4096, weights=1, input_values=1,
        output_values=1, cycles=2,
    )
    assert legacy.utilization == 1.0
    assert legacy.macs_per_cycle == pytest.approx(2048.0)
