"""Structural validation of the generated NFU Verilog.

No simulator is available offline, so these tests parse the emitted
RTL: module/endmodule balance, expected port widths, instance counts
and cross-module name consistency.
"""

import re

import pytest

from repro import core
from repro.errors import HardwareModelError
from repro.hw.nfu import NfuGeometry
from repro.hw.verilog import (
    generate_adder_tree,
    generate_nfu,
    generate_relu,
    generate_weight_block,
    product_bits,
)


def module_names(source: str):
    return re.findall(r"^module\s+(\w+)", source, flags=re.MULTILINE)


def balanced(source: str) -> bool:
    return source.count("module ") - source.count("endmodule") == 0


def test_fixed_weight_block():
    source = generate_weight_block(core.get_precision("fixed8"))
    assert "module wb_fixed_8x8" in source
    assert "weight * din" in source
    assert "[15:0] product" in source  # 8x8 -> 16-bit product
    assert balanced(source)


def test_pow2_weight_block_uses_shifter():
    source = generate_weight_block(core.get_precision("pow2"))
    assert "module wb_pow2_6_16" in source
    assert "<<<" in source
    assert "exponent" in source
    assert balanced(source)


def test_binary_weight_block_negates():
    source = generate_weight_block(core.get_precision("binary"))
    assert "module wb_binary_16" in source
    assert "-extended" in source
    assert "*" not in source.split("endmodule")[0].split(");")[1], (
        "binary block must not contain a multiplier"
    )


def test_float_weight_block_not_generated():
    with pytest.raises(HardwareModelError):
        generate_weight_block(core.get_precision("float32"))
    with pytest.raises(HardwareModelError):
        generate_nfu(core.get_precision("float32"))


def test_product_bits_per_kind():
    assert product_bits(core.get_precision("fixed8")) == 16
    assert product_bits(core.get_precision("fixed16")) == 32
    assert product_bits(core.get_precision("pow2")) == 16 + 31
    assert product_bits(core.get_precision("binary")) == 17


def test_adder_tree_structure():
    source = generate_adder_tree(16, 16)
    assert "module adder_tree_16x16" in source
    # 16-input tree: 8 + 4 + 2 + 1 = 15 two-input adders
    assert source.count(" + ") == 15
    # output grows by log2(16) = 4 bits
    assert "[19:0] sum" in source
    assert balanced(source)


def test_adder_tree_validation():
    with pytest.raises(HardwareModelError):
        generate_adder_tree(12, 16)  # not a power of two
    with pytest.raises(HardwareModelError):
        generate_adder_tree(1, 16)


def test_relu_module():
    source = generate_relu(20)
    assert "module relu_20" in source
    assert "'sd0" in source
    assert balanced(source)


@pytest.mark.parametrize("key", ["fixed8", "fixed16", "pow2", "binary"])
def test_nfu_top_generates(key):
    spec = core.get_precision(key)
    geometry = NfuGeometry(neurons=4, synapses=4)
    source = generate_nfu(spec, geometry)
    assert balanced(source)
    names = module_names(source)
    assert f"nfu_{key}_4x4" in names
    # 4 neurons x 4 synapses weight blocks instantiated
    assert source.count("u_wb_") == 16
    # one tree + one relu per neuron
    assert source.count("u_tree_") == 4
    assert source.count("u_relu_") == 4
    # registered output stage
    assert "always @(posedge clk)" in source


def test_nfu_component_names_consistent():
    """Every instantiated module must be defined in the same source."""
    source = generate_nfu(core.get_precision("fixed8"), NfuGeometry(2, 4))
    defined = set(module_names(source))
    instantiated = set(re.findall(r"^\s+(\w+)\s+u_\w+", source, flags=re.MULTILINE))
    assert instantiated <= defined


def test_nfu_scales_with_geometry():
    small = generate_nfu(core.get_precision("binary"), NfuGeometry(2, 2))
    large = generate_nfu(core.get_precision("binary"), NfuGeometry(8, 8))
    assert large.count("u_wb_") == 64
    assert small.count("u_wb_") == 4
    assert len(large) > len(small)
