"""Per-image energy model tests, including paper calibration."""

import pytest

from repro import core
from repro.core.precision import PAPER_PRECISIONS
from repro.hw.energy import EnergyModel
from repro.zoo.registry import build_network, network_info

#: Full-precision per-image energies from Tables IV and V (uJ).
PAPER_FLOAT_ENERGY = {
    "lenet": 60.74,
    "convnet": 754.18,
    "alex": 335.68,
}


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


@pytest.mark.parametrize("network_name", sorted(PAPER_FLOAT_ENERGY))
def test_float_energy_matches_paper(model, network_name):
    info = network_info(network_name)
    net = build_network(network_name)
    report = model.evaluate(net, info.input_shape, core.get_precision("float32"))
    assert report.energy_uj == pytest.approx(
        PAPER_FLOAT_ENERGY[network_name], rel=0.10
    )


def test_energy_decreases_with_precision(model):
    info = network_info("lenet")
    net = build_network("lenet")
    energies = [
        model.evaluate(net, info.input_shape, spec).energy_uj
        for spec in PAPER_PRECISIONS
    ]
    # float32 > fixed32 > fixed16 > fixed8 > fixed4; pow2 and binary at the end
    assert energies[0] > energies[1] > energies[2] > energies[3] > energies[4]
    assert energies[6] == min(energies)  # binary cheapest


def test_savings_vs_baseline(model):
    info = network_info("lenet")
    net = build_network("lenet")
    baseline = model.evaluate(net, info.input_shape, core.get_precision("float32"))
    fixed8 = model.evaluate(net, info.input_shape, core.get_precision("fixed8"))
    saving = fixed8.savings_vs(baseline)
    # paper: 85.41% for MNIST fixed-point (8,8)
    assert saving == pytest.approx(85.41, abs=5.0)


def test_layer_energies_sum_to_total(model):
    info = network_info("alex")
    net = build_network("alex")
    report = model.evaluate(net, info.input_shape, core.get_precision("fixed16"))
    assert sum(l.energy_uj for l in report.layers) == pytest.approx(report.energy_uj)


def test_report_metadata(model):
    info = network_info("lenet")
    net = build_network("lenet")
    report = model.evaluate(net, info.input_shape, core.get_precision("pow2"))
    assert report.network_name == "lenet"
    assert report.precision_label == "Powers of Two (6,16)"
    assert report.runtime_us == pytest.approx(report.total_cycles * 4e-3)


def test_accelerators_are_cached(model):
    a = model.accelerator_for(core.get_precision("fixed8"))
    b = model.accelerator_for(core.get_precision("fixed8"))
    assert a is b


def test_enlarged_networks_cost_more(model):
    spec = core.get_precision("fixed16")
    energies = {}
    for name in ("alex", "alex+", "alex++"):
        info = network_info(name)
        energies[name] = model.evaluate(
            build_network(name), info.input_shape, spec
        ).energy_uj
    assert energies["alex"] < energies["alex+"]
    assert energies["alex"] < energies["alex++"]


def test_enlarged_low_precision_beats_float_baseline(model):
    """The paper's headline: ALEX++ at powers-of-two costs less energy
    than plain ALEX at float32."""
    alex_info = network_info("alex")
    baseline = model.evaluate(
        build_network("alex"), alex_info.input_shape, core.get_precision("float32")
    )
    pp_info = network_info("alex++")
    enlarged = model.evaluate(
        build_network("alex++"), pp_info.input_shape, core.get_precision("pow2")
    )
    assert enlarged.energy_uj < baseline.energy_uj
