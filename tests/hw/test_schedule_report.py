"""Schedule report and activation-range report tests."""

import numpy as np

from repro import core
from repro.core.analysis import activation_range_report
from repro.hw.accelerator import Accelerator
from repro.hw.report import schedule_report
from repro.hw.scheduler import TileScheduler
from repro.zoo import build_network, network_info
from tests.conftest import make_tiny_cnn


def test_schedule_report_lists_layers():
    info = network_info("lenet")
    schedule = TileScheduler(Accelerator.for_precision("fixed16")).schedule(
        build_network("lenet"), info.input_shape
    )
    text = schedule_report(schedule)
    for name in ("conv1", "conv2", "ip1", "ip2"):
        assert name in text
    assert "total" in text
    assert str(schedule.total_cycles) in text


def test_schedule_report_utilization_bounded():
    info = network_info("alex")
    accelerator = Accelerator.for_precision("fixed16")
    schedule = TileScheduler(accelerator).schedule(
        build_network("alex"), info.input_shape
    )
    text = schedule_report(schedule)
    assert "MACs/cycle" in text
    for layer in schedule.layers:
        assert layer.utilization <= accelerator.macs_per_cycle + 1e-9


def test_schedule_report_sim_columns():
    """With a SimReport the table shows measured stalls, without it
    the stall column degrades to an em dash."""
    from repro.hw.sim import TileSimulator

    info = network_info("lenet")
    accelerator = Accelerator.for_precision("fixed8")
    schedule = TileScheduler(accelerator).schedule(
        build_network("lenet"), info.input_shape
    )
    plain = schedule_report(schedule)
    assert "util %" in plain and "stalls" in plain
    assert "—" in plain
    assert "simulated" not in plain

    sim = TileSimulator(accelerator, schedule).run()
    with_sim = schedule_report(schedule, sim=sim)
    assert f"simulated {sim.total_cycles} cycles" in with_sim
    assert "—" not in with_sim
    # the compact breakdown uses per-cause abbreviations (su=startup)
    assert "su" in with_sim
    assert str(sim.total_cycles) in with_sim


def test_activation_range_report_covers_insertion_points():
    net = make_tiny_cnn()
    qnet = core.QuantizedNetwork(net, core.get_precision("fixed8"))
    rng = np.random.default_rng(0)
    images = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
    report = activation_range_report(qnet, images)
    assert "quant_in" in report
    assert all(value > 0 for value in report.values())
    # input range should reflect the data (~standard normal max)
    assert 1.0 < report["quant_in"] < 10.0
