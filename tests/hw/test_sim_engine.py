"""Unit tests for the simulator core: engine, DMA, buffers, compiler."""

import pytest

from repro.errors import SimulationError
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.scheduler import TileScheduler
from repro.hw.sim import (
    DmaEngine,
    DoubleBuffer,
    SimConfig,
    SimEngine,
    compile_schedule,
)
from tests.conftest import make_tiny_cnn


# ----------------------------------------------------------------------
# event engine
# ----------------------------------------------------------------------
def test_events_pop_in_time_then_seq_order():
    engine = SimEngine()
    order = []
    engine.post(5, "b", "x")
    engine.post(5, "a", "y")   # same cycle, posted later
    engine.post(2, "c", "z")
    engine.run(lambda _, e: order.append(e.kind))
    assert order == ["c", "b", "a"]
    assert engine.now == 5


def test_priority_breaks_same_cycle_ties():
    engine = SimEngine()
    order = []
    engine.post(3, "late", "x", priority=1)
    engine.post(3, "early", "y", priority=0)
    engine.run(lambda _, e: order.append(e.kind))
    assert order == ["early", "late"]


def test_negative_delay_rejected():
    engine = SimEngine()
    with pytest.raises(SimulationError):
        engine.post(-1, "bad", "x")


def test_event_budget_guards_runaway():
    engine = SimEngine(max_events=10)

    def reschedule(eng, event):
        eng.post(1, "tick", "x")

    engine.post(0, "tick", "x")
    with pytest.raises(SimulationError):
        engine.run(reschedule)


def test_trace_digest_depends_on_trace():
    def run(kinds):
        engine = SimEngine()
        for delay, kind in kinds:
            engine.post(delay, kind, "s")
        engine.run(lambda _, e: None)
        return engine.trace_digest()

    assert run([(1, "a"), (2, "b")]) == run([(1, "a"), (2, "b")])
    assert run([(1, "a"), (2, "b")]) != run([(1, "a"), (2, "c")])


def test_sim_config_validation():
    with pytest.raises(SimulationError):
        SimConfig(bandwidth_gbps=0.0)
    with pytest.raises(SimulationError):
        SimConfig(max_events=0)
    assert SimConfig().dma_bits_per_cycle(250e6) is None
    # 256 Gbit/s at 250 MHz = 1024 bits per cycle
    assert SimConfig(bandwidth_gbps=256).dma_bits_per_cycle(250e6) == \
        pytest.approx(1024.0)


# ----------------------------------------------------------------------
# DMA
# ----------------------------------------------------------------------
def test_dma_unconstrained_is_zero_cycles():
    dma = DmaEngine("dma", None)
    assert dma.issue(10, 1_000_000) == 10


def test_dma_serializes_transfers():
    dma = DmaEngine("dma", bits_per_cycle=100.0)
    first = dma.issue(0, 1000)    # 10 cycles
    second = dma.issue(0, 500)    # queues behind: +5
    assert (first, second) == (10, 15)
    assert dma.bits_moved == 1500
    assert dma.transfers == 2


def test_dma_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        DmaEngine("dma", bits_per_cycle=0.0)
    dma = DmaEngine("dma", None)
    with pytest.raises(SimulationError):
        dma.duration_cycles(-1)


# ----------------------------------------------------------------------
# double buffer protocol
# ----------------------------------------------------------------------
def test_double_buffer_ping_pong():
    buffer = DoubleBuffer("Bin", words=8, bits_per_word=8)  # 32b banks
    buffer.begin_fill(0, 32)
    buffer.begin_fill(1, 32)       # other bank, legal while 0 fills
    buffer.finish_fill(0)
    assert buffer.is_ready(0) and not buffer.is_ready(1)
    buffer.consume(0)
    buffer.finish_fill(1)
    buffer.begin_fill(2, 16)       # bank 0 reclaimed
    assert buffer.peak_occupancy_bits == 64


def test_double_buffer_rejects_protocol_violations():
    buffer = DoubleBuffer("SB", words=8, bits_per_word=8)
    with pytest.raises(SimulationError):
        buffer.begin_fill(0, 33)   # over bank capacity
    buffer.begin_fill(0, 32)
    with pytest.raises(SimulationError):
        buffer.begin_fill(2, 8)    # bank 0 still filling
    with pytest.raises(SimulationError):
        buffer.consume(0)          # not ready yet


# ----------------------------------------------------------------------
# layer compiler
# ----------------------------------------------------------------------
def test_compile_chunks_fit_double_buffered_banks():
    accelerator = Accelerator.for_precision(
        "fixed8",
        config=AcceleratorConfig(
            input_buffer_words=256,
            output_buffer_words=256,
            weight_buffer_words=2048,
        ),
    )
    schedule = TileScheduler(accelerator).schedule(
        make_tiny_cnn(), (1, 28, 28)
    )
    programs = compile_schedule(schedule, accelerator)
    spec = accelerator.spec
    for program, work in zip(programs, schedule.layers):
        assert sum(c.macs for c in program.chunks) == work.macs
        assert sum(c.input_bits for c in program.chunks) == \
            work.input_values * spec.input_bits
        assert sum(c.weight_bits for c in program.chunks) == \
            work.weights * spec.weight_bits
        for chunk in program.chunks:
            assert chunk.input_bits <= (256 // 2) * spec.input_bits
            assert chunk.weight_bits <= (2048 // 2) * spec.weight_bits
            assert chunk.output_bits <= (256 // 2) * spec.input_bits


def test_compile_cycle_totals_track_analytical():
    """Per-chunk ceils exceed the whole-layer ceil by < #chunks."""
    accelerator = Accelerator.for_precision("fixed16")
    schedule = TileScheduler(accelerator).schedule(
        make_tiny_cnn(), (1, 28, 28)
    )
    programs = compile_schedule(schedule, accelerator)
    for program, work in zip(programs, schedule.layers):
        analytical_compute = work.cycles - (
            program.startup_cycles + program.fill_cycles
        )
        assert analytical_compute <= program.compute_cycles
        assert program.compute_cycles - analytical_compute < \
            len(program.chunks)
