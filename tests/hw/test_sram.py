"""SRAM buffer model tests."""

import pytest

from repro.errors import HardwareModelError
from repro.hw.sram import SramBuffer
from repro.hw.tech import TECH_65NM


def make(bits_per_word=16, words=4096, bandwidth=256):
    return SramBuffer("Bin", words, bits_per_word, bandwidth)


def test_capacity_accounting():
    buffer = make()
    assert buffer.total_bits == 4096 * 16
    assert buffer.kilobytes == pytest.approx(8.0)


def test_area_scales_with_word_width():
    assert make(32).area_mm2(TECH_65NM) == pytest.approx(
        2 * make(16).area_mm2(TECH_65NM)
    )


def test_power_positive_and_monotonic():
    narrow = make(8, bandwidth=128).power_mw(TECH_65NM)
    wide = make(16, bandwidth=256).power_mw(TECH_65NM)
    assert 0 < narrow < wide


def test_invalid_geometry_rejected():
    with pytest.raises(HardwareModelError):
        SramBuffer("bad", 0, 16, 10)
    with pytest.raises(HardwareModelError):
        SramBuffer("bad", 16, 0, 10)
    with pytest.raises(HardwareModelError):
        SramBuffer("bad", 16, 16, -1)


def test_str_mentions_geometry():
    text = str(make())
    assert "Bin" in text and "4096" in text and "8.0 KB" in text
