"""Design-space exploration tests."""

import pytest

from repro import core, hw
from repro.errors import ConfigurationError
from repro.hw.design_space import (
    evaluate_design,
    explore_design_space,
    throughput_pareto,
)
from repro.zoo import build_network, network_info


@pytest.fixture(scope="module")
def lenet():
    info = network_info("lenet")
    return build_network("lenet"), info.input_shape


def test_evaluate_design_basic(lenet):
    net, shape = lenet
    candidate = evaluate_design(net, shape, core.get_precision("fixed16"), 16, 16)
    assert candidate.area_mm2 > 0
    assert candidate.images_per_second > 0
    assert candidate.label == "fixed16 16x16 @250MHz"
    assert candidate.images_per_second_per_watt > 0


def test_bigger_tile_is_faster_and_larger(lenet):
    net, shape = lenet
    spec = core.get_precision("fixed16")
    small = evaluate_design(net, shape, spec, 8, 8)
    big = evaluate_design(net, shape, spec, 32, 32)
    assert big.images_per_second > small.images_per_second
    assert big.area_mm2 > small.area_mm2
    assert big.cycles_per_image < small.cycles_per_image


def test_explore_covers_grid(lenet):
    net, shape = lenet
    candidates = explore_design_space(
        net, shape,
        precisions=[core.get_precision("fixed8"), core.get_precision("binary")],
        geometries=[(8, 8), (16, 16)],
    )
    assert len(candidates) == 4
    labels = {c.label for c in candidates}
    assert "binary 16x16 @250MHz" in labels


def test_explore_with_clock_sweep(lenet):
    net, shape = lenet
    candidates = explore_design_space(
        net, shape,
        precisions=[core.get_precision("fixed8")],
        geometries=[(16, 16)],
        clocks_mhz=(125.0, 250.0),
    )
    slow, fast = sorted(candidates, key=lambda c: c.clock_mhz)
    assert fast.images_per_second == pytest.approx(2 * slow.images_per_second)
    assert fast.power_mw > slow.power_mw
    assert fast.area_mm2 == pytest.approx(slow.area_mm2)


def test_empty_geometry_rejected(lenet):
    net, shape = lenet
    with pytest.raises(ConfigurationError):
        explore_design_space(net, shape, geometries=[])


def test_pareto_properties(lenet):
    net, shape = lenet
    candidates = explore_design_space(
        net, shape,
        precisions=[core.get_precision(k) for k in ("fixed16", "fixed8", "binary")],
    )
    frontier = throughput_pareto(candidates)
    assert frontier
    assert len(frontier) <= len(candidates)
    # no frontier member dominates another
    for a in frontier:
        for b in frontier:
            if a is not b:
                dominates = (
                    b.images_per_second >= a.images_per_second
                    and b.area_mm2 <= a.area_mm2
                    and b.energy_uj_per_image <= a.energy_uj_per_image
                    and (
                        b.images_per_second > a.images_per_second
                        or b.area_mm2 < a.area_mm2
                        or b.energy_uj_per_image < a.energy_uj_per_image
                    )
                )
                assert not dominates
    # frontier sorted by area
    areas = [c.area_mm2 for c in frontier]
    assert areas == sorted(areas)


def test_binary_on_every_area_frontier(lenet):
    """Binary is the cheapest design at any geometry, so the smallest-
    area frontier point must be binary."""
    net, shape = lenet
    candidates = explore_design_space(net, shape)
    frontier = throughput_pareto(candidates)
    assert frontier[0].precision.key == "binary"
