"""Neural functional unit tests."""

import pytest

from repro import core
from repro.errors import HardwareModelError
from repro.hw.nfu import NeuralFunctionalUnit, NfuGeometry


def make(key="fixed16", **kwargs):
    return NeuralFunctionalUnit(core.get_precision(key), **kwargs)


def test_default_geometry_is_papers_16x16():
    nfu = make()
    assert nfu.geometry.neurons == 16
    assert nfu.geometry.synapses == 16
    assert nfu.geometry.macs_per_cycle == 256


def test_pipeline_depth_binary_merged():
    assert make("fixed16").pipeline_depth == 3
    assert make("float32").pipeline_depth == 3
    assert make("binary").pipeline_depth == 2  # paper merges stages 1-2


def test_breakdown_sums_to_total():
    nfu = make("fixed8")
    parts = nfu.breakdown()
    total_area = sum(p.area_mm2 for p in parts.values())
    assert total_area == pytest.approx(nfu.total_cost().area_mm2)


def test_stage1_dominates_for_float():
    nfu = make("float32")
    parts = nfu.breakdown()
    assert parts["stage1_weight_blocks"].area_mm2 > parts["stage2_adder_trees"].area_mm2


def test_costs_decrease_with_precision():
    order = ["float32", "fixed32", "fixed16", "fixed8", "fixed4"]
    areas = [make(k).total_cost().area_mm2 for k in order]
    assert all(a > b for a, b in zip(areas, areas[1:]))


def test_binary_cheapest_compute():
    keys = ["float32", "fixed32", "fixed16", "fixed8", "pow2"]
    binary_area = make("binary").total_cost().area_mm2
    assert all(make(k).total_cost().area_mm2 > binary_area for k in keys)


def test_custom_geometry_scales_stage1():
    small = make("fixed16", geometry=NfuGeometry(neurons=8, synapses=8))
    big = make("fixed16", geometry=NfuGeometry(neurons=16, synapses=16))
    ratio = big.stage1_cost().area_mm2 / small.stage1_cost().area_mm2
    assert ratio == pytest.approx(4.0)


def test_invalid_geometry():
    with pytest.raises(HardwareModelError):
        NfuGeometry(neurons=0)
    with pytest.raises(HardwareModelError):
        NfuGeometry(synapses=1)
