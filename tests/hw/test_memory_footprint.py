"""Memory footprint tests against Section V-B numbers."""

import pytest

from repro import core
from repro.core.precision import PAPER_PRECISIONS
from repro.hw.memory_footprint import network_memory_footprint
from repro.zoo.registry import build_network, network_info

#: Paper Section V-B parameter memory at full precision (KB).
PAPER_KB = {
    "lenet": 1650.0,
    "convnet": 2150.0,
    "alex": 350.0,
    "alex+": 1250.0,
    "alex++": 9400.0,
}


@pytest.mark.parametrize("name", sorted(PAPER_KB))
def test_float32_parameter_memory_matches_paper(name):
    info = network_info(name)
    footprint = network_memory_footprint(
        build_network(name), info.input_shape, core.get_precision("float32")
    )
    assert footprint.parameter_kb == pytest.approx(PAPER_KB[name], rel=0.05)


def test_footprint_scales_linearly_with_weight_bits():
    info = network_info("lenet")
    net = build_network("lenet")
    full = network_memory_footprint(net, info.input_shape, core.get_precision("float32"))
    half = network_memory_footprint(net, info.input_shape, core.get_precision("fixed16"))
    binary = network_memory_footprint(net, info.input_shape, core.get_precision("binary"))
    assert half.reduction_vs(full) == pytest.approx(2.0)
    assert binary.reduction_vs(full) == pytest.approx(32.0)


def test_reduction_window_is_2x_to_32x():
    """Paper: footprint reduces 'from 2x to 32x for different bit
    precisions'."""
    info = network_info("alex")
    net = build_network("alex")
    full = network_memory_footprint(net, info.input_shape, core.get_precision("float32"))
    reductions = [
        network_memory_footprint(net, info.input_shape, spec).reduction_vs(full)
        for spec in PAPER_PRECISIONS
        if not spec.is_float
    ]
    assert min(reductions) == pytest.approx(1.0)   # fixed32 keeps 32 bits
    assert max(reductions) == pytest.approx(32.0)  # binary


def test_input_memory_uses_input_bits():
    info = network_info("alex")
    net = build_network("alex")
    pow2 = network_memory_footprint(net, info.input_shape, core.get_precision("pow2"))
    # 3*32*32 values at 16 bits
    assert pow2.input_kb == pytest.approx(3 * 32 * 32 * 16 / 8192)


def test_peak_feature_map_at_least_input():
    info = network_info("lenet")
    net = build_network("lenet")
    fp = network_memory_footprint(net, info.input_shape, core.get_precision("float32"))
    assert fp.peak_feature_map_kb >= fp.input_kb
    assert fp.total_kb > fp.parameter_kb
