"""Technology library tests."""

import dataclasses

import pytest

from repro.errors import HardwareModelError
from repro.hw.tech import TECH_65NM, TechnologyLibrary


def test_default_library_parameters():
    assert TECH_65NM.clock_hz == 250e6
    assert TECH_65NM.clock_period_s == pytest.approx(4e-9)
    assert TECH_65NM.name == "65nm-generic"


def test_sram_area_linear_in_bits():
    assert TECH_65NM.sram_area(2000) == pytest.approx(2 * TECH_65NM.sram_area(1000))
    assert TECH_65NM.sram_area(0) == 0.0


def test_sram_power_increases_with_bandwidth():
    idle = TECH_65NM.sram_power(1 << 20, 0)
    busy = TECH_65NM.sram_power(1 << 20, 4096)
    assert busy > idle > 0


def test_sram_power_leakage_scales_with_capacity():
    small = TECH_65NM.sram_power(1 << 10, 0)
    large = TECH_65NM.sram_power(1 << 20, 0)
    assert large > small


def test_logic_power_proportional_to_area():
    assert TECH_65NM.logic_power(2.0) == pytest.approx(2 * TECH_65NM.logic_power(1.0))


def test_negative_inputs_rejected():
    with pytest.raises(HardwareModelError):
        TECH_65NM.sram_area(-1)
    with pytest.raises(HardwareModelError):
        TECH_65NM.sram_power(10, -1)
    with pytest.raises(HardwareModelError):
        TECH_65NM.logic_power(-0.1)


def test_invalid_library_construction():
    with pytest.raises(HardwareModelError):
        dataclasses.replace(TECH_65NM, clock_hz=0.0)
    with pytest.raises(HardwareModelError):
        dataclasses.replace(TECH_65NM, sram_area_per_bit=-1.0)
    with pytest.raises(HardwareModelError):
        dataclasses.replace(TECH_65NM, bufinv_fraction=1.5)
