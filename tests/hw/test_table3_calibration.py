"""Calibration guarantee: the hardware model reproduces Table III.

These tolerances document the model's fidelity; if a refactor of the
component models shifts any design point by more than the stated bound,
these tests fail and the calibration must be redone (see
repro/hw/tech.py for the protocol).
"""

import pytest

from repro.core.precision import PAPER_PRECISIONS
from repro.hw.accelerator import Accelerator

#: (area mm^2, power mW) synthesized values from Table III.
PAPER = {
    "float32": (16.74, 1379.60),
    "fixed32": (14.13, 1213.40),
    "fixed16": (6.88, 574.75),
    "fixed8": (3.36, 219.87),
    "fixed4": (1.66, 111.17),
    "pow2": (3.05, 209.91),
    "binary": (1.21, 95.36),
}

#: worst acceptable relative error per design point
AREA_TOLERANCE = 0.06
POWER_TOLERANCE = 0.13


@pytest.mark.parametrize("spec", PAPER_PRECISIONS, ids=lambda s: s.key)
def test_area_matches_paper(spec):
    paper_area, _ = PAPER[spec.key]
    model_area = Accelerator(spec).area_mm2
    assert model_area == pytest.approx(paper_area, rel=AREA_TOLERANCE)


@pytest.mark.parametrize("spec", PAPER_PRECISIONS, ids=lambda s: s.key)
def test_power_matches_paper(spec):
    _, paper_power = PAPER[spec.key]
    model_power = Accelerator(spec).power_mw
    assert model_power == pytest.approx(paper_power, rel=POWER_TOLERANCE)


def test_savings_ordering_matches_paper():
    """The savings ranking across precisions must match Table III even
    where absolute values deviate."""
    baseline = Accelerator(PAPER_PRECISIONS[0])
    model_area_savings = {
        spec.key: 1.0 - Accelerator(spec).area_mm2 / baseline.area_mm2
        for spec in PAPER_PRECISIONS
    }
    paper_area_savings = {
        key: 1.0 - area / PAPER["float32"][0] for key, (area, _) in PAPER.items()
    }
    model_order = sorted(model_area_savings, key=model_area_savings.get)
    paper_order = sorted(paper_area_savings, key=paper_area_savings.get)
    assert model_order == paper_order
