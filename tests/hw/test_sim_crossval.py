"""Cross-validation and determinism guarantees of ``repro.hw.sim``.

The headline contract of the simulator (ISSUE 6 / ROADMAP): under the
paper's operating assumption (DMA fully hidden), simulated energy/image
must agree with the analytical ``Accelerator``+``Schedule`` numbers
within 5 % for every Table-III precision, and the event trace must be
bitwise deterministic — same digest at any ``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys

import pytest

from repro.core.precision import PAPER_PRECISIONS
from repro.hw import Accelerator, EnergyModel, SimConfig
from repro.hw.scheduler import TileScheduler
from repro.hw.sim import STALL_CAUSES, TileSimulator
from repro.zoo import build_network, network_info

#: documented tolerance policy (docs/hw_sim.md): energy within 5 %,
#: cycles within 1 % (the only cycle difference is per-chunk rounding)
ENERGY_TOLERANCE_PCT = 5.0
CYCLE_TOLERANCE_PCT = 1.0


@pytest.fixture(scope="module")
def lenet_workload():
    info = network_info("lenet")
    return build_network("lenet", seed=0), info.input_shape


@pytest.mark.parametrize(
    "key", [spec.key for spec in PAPER_PRECISIONS]
)
def test_sim_matches_analytical_for_table3_precision(key, lenet_workload):
    network, input_shape = lenet_workload
    accelerator = Accelerator.for_precision(key)
    schedule = TileScheduler(accelerator).schedule(network, input_shape)
    report = TileSimulator(accelerator, schedule).run()

    assert report.analytical_cycles == schedule.total_cycles
    assert abs(report.cycle_gap_pct) <= CYCLE_TOLERANCE_PCT
    assert abs(report.energy_gap_pct) <= ENERGY_TOLERANCE_PCT
    # the sim only refines the analytical number downward (stall
    # cycles stop charging switching power), never above it
    assert report.energy_uj <= report.analytical_energy_uj
    assert 0.0 <= report.utilization <= 1.0
    # identity: every cycle is attributed exactly once
    assert report.busy_cycles + report.stall_cycles == report.total_cycles


@pytest.mark.parametrize("network_name", ["lenet", "convnet", "alex"])
def test_sim_matches_analytical_across_paper_networks(network_name):
    info = network_info(network_name)
    network = build_network(network_name, seed=0)
    report = EnergyModel().simulate(
        network, info.input_shape, PAPER_PRECISIONS[3]  # fixed8
    )
    assert abs(report.energy_gap_pct) <= ENERGY_TOLERANCE_PCT
    assert abs(report.cycle_gap_pct) <= CYCLE_TOLERANCE_PCT


def test_repeated_runs_identical_trace_digest(lenet_workload):
    network, input_shape = lenet_workload
    accelerator = Accelerator.for_precision("fixed8")
    schedule = TileScheduler(accelerator).schedule(network, input_shape)
    first = TileSimulator(accelerator, schedule).run()
    second = TileSimulator(accelerator, schedule).run()
    assert first.trace_digest == second.trace_digest
    assert first.total_cycles == second.total_cycles
    assert first.energy_uj == second.energy_uj


_DIGEST_SCRIPT = """
from repro.hw import Accelerator
from repro.hw.scheduler import TileScheduler
from repro.hw.sim import TileSimulator
from repro.zoo import build_network, network_info

info = network_info("lenet_small")
accelerator = Accelerator.for_precision("fixed8")
schedule = TileScheduler(accelerator).schedule(
    build_network("lenet_small", seed=0), info.input_shape
)
print(TileSimulator(accelerator, schedule).run().trace_digest)
"""


def test_trace_digest_stable_across_hash_seeds():
    """Two interpreters with different PYTHONHASHSEED agree bitwise."""
    digests = []
    for hash_seed in ("0", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in ("src", env.get("PYTHONPATH")) if part
        )
        proc = subprocess.run(
            [sys.executable, "-c", _DIGEST_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.append(proc.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64  # a real sha256, not an empty print


def test_finite_bandwidth_exposes_dma_stalls(lenet_workload):
    network, input_shape = lenet_workload
    accelerator = Accelerator.for_precision("fixed8")
    schedule = TileScheduler(accelerator).schedule(network, input_shape)
    hidden = TileSimulator(accelerator, schedule).run()
    starved = TileSimulator(
        accelerator, schedule, SimConfig(bandwidth_gbps=2.0)
    ).run()
    assert hidden.stalls["dma_wait"] == 0
    assert starved.stalls["dma_wait"] > 0
    assert starved.total_cycles > hidden.total_cycles
    assert starved.utilization < hidden.utilization
    assert not starved.roofline.compute_bound
    assert hidden.roofline.compute_bound


def test_stall_accounting_is_complete(lenet_workload):
    network, input_shape = lenet_workload
    accelerator = Accelerator.for_precision("fixed16")
    schedule = TileScheduler(accelerator).schedule(network, input_shape)
    report = TileSimulator(
        accelerator, schedule, SimConfig(bandwidth_gbps=8.0)
    ).run()
    assert set(report.stalls) == set(STALL_CAUSES)
    for layer in report.layers:
        assert layer.busy_cycles + layer.stall_cycles == layer.cycles
    assert sum(layer.cycles for layer in report.layers) == \
        report.total_cycles


def test_energy_components_sum_to_total(lenet_workload):
    network, input_shape = lenet_workload
    report = EnergyModel().simulate(
        network, input_shape, PAPER_PRECISIONS[2]  # fixed16
    )
    assert sum(report.energy_by_component_uj.values()) == \
        pytest.approx(report.energy_uj, rel=1e-9)
    assert sum(layer.energy_uj for layer in report.layers) == \
        pytest.approx(report.energy_uj, rel=1e-9)


def test_sim_metrics_and_json_round_trip(lenet_workload):
    import json

    from repro import obs

    network, input_shape = lenet_workload
    metrics = obs.MetricsRegistry()
    previous = obs.set_metrics(metrics)
    try:
        report = EnergyModel().simulate(
            network, input_shape, PAPER_PRECISIONS[3]
        )
    finally:
        obs.set_metrics(previous)
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["sim.runs"] == 1
    assert snapshot["counters"]["sim.events"] == report.events_processed
    assert snapshot["counters"]["sim.cycles"] == report.total_cycles
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["trace_digest"] == report.trace_digest
    assert payload["stalls"]["startup"] == report.stalls["startup"]
