"""Synthesis report / Table III / Figure 3 formatting tests."""

import pytest

from repro.core.precision import PAPER_PRECISIONS
from repro.hw.accelerator import Accelerator
from repro.hw.report import (
    BREAKDOWN_CATEGORIES,
    area_power_breakdown,
    design_metrics_table,
    synthesis_report,
)


def test_breakdown_has_figure3_categories():
    acc = Accelerator.for_precision("fixed16")
    breakdown = area_power_breakdown(acc)
    assert sorted(breakdown) == sorted(BREAKDOWN_CATEGORIES)
    for entry in breakdown.values():
        assert entry["area_mm2"] >= 0
        assert entry["power_mw"] >= 0


def test_memory_dominates_every_breakdown():
    for spec in PAPER_PRECISIONS:
        breakdown = area_power_breakdown(Accelerator(spec))
        memory_area = breakdown["memory"]["area_mm2"]
        assert all(
            memory_area >= breakdown[c]["area_mm2"] for c in BREAKDOWN_CATEGORIES
        ), spec.key


def test_design_metrics_table_rows():
    rows = design_metrics_table()
    assert len(rows) == 7
    assert rows[0]["key"] == "float32"
    assert rows[0]["area_saving_pct"] == 0.0
    # savings strictly increase from fixed32 down the fixed-point column
    fixed = [r for r in rows if r["key"].startswith("fixed")]
    savings = [r["area_saving_pct"] for r in fixed]
    assert savings == sorted(savings)


def test_synthesis_report_text():
    acc = Accelerator.for_precision("pow2")
    text = synthesis_report(acc)
    assert "Powers of Two (6,16)" in text
    assert "250 MHz" in text
    for category in BREAKDOWN_CATEGORIES:
        assert category in text
    assert "buffers:" in text
    assert "SB" in text


def test_buffer_domination_claim_in_report():
    """Section V-B: buffers dominate area and power for every design."""
    for spec in PAPER_PRECISIONS:
        fractions = Accelerator(spec).memory_fraction()
        assert fractions["area"] > 0.5
        assert fractions["power"] > 0.5
