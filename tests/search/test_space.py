"""SearchSpace: validation, fingerprints, deterministic moves."""

import pytest

from repro.core.precision import LayeredPrecisionSpec, PrecisionSpec
from repro.errors import ConfigError
from repro.parallel.seeding import generator_for
from repro.search import Candidate, SearchSpace


def space(**overrides):
    kwargs = dict(
        task="lenet_small",
        width_choices=(0.5, 1.0),
        weight_bit_choices=(2, 4, 8),
    )
    kwargs.update(overrides)
    return SearchSpace(**kwargs)


def test_validation_rejects_bad_axes():
    with pytest.raises(ConfigError):
        space(width_choices=())
    with pytest.raises(ConfigError):
        space(width_choices=(0.5, 2.0))  # 1.0 missing
    with pytest.raises(ConfigError):
        space(width_choices=(-1.0, 1.0))
    with pytest.raises(ConfigError):
        space(weight_bit_choices=(0, 8))
    with pytest.raises(ConfigError):
        space(kind="float")
    with pytest.raises(ConfigError):
        space(input_bits=0)


def test_axes_are_canonicalized():
    a = space(width_choices=(1.0, 0.5, 0.5), weight_bit_choices=(8, 2, 4))
    assert a.width_choices == (0.5, 1.0)
    assert a.weight_bit_choices == (2, 4, 8)


def test_fingerprint_tracks_every_axis():
    base = space()
    assert base.fingerprint() == space().fingerprint()
    assert base.fingerprint() != space(task="convnet_small").fingerprint()
    assert base.fingerprint() != space(weight_bit_choices=(4, 8)).fingerprint()
    assert base.fingerprint() != space(input_bits=4).fingerprint()
    assert base.fingerprint() != space(per_layer=False).fingerprint()
    # canonicalization means ordering does not change identity
    assert base.fingerprint() == space(width_choices=(1.0, 0.5)).fingerprint()


def test_candidate_network_naming():
    assert Candidate("lenet", 1.0, "fixed8").network == "lenet"
    assert Candidate("lenet", 0.5, "fixed8").network == "lenet@x0.5"
    assert Candidate("lenet", 0.5, "fixed8").key == "lenet@x0.5|fixed8"


def test_anchors_are_the_paper_grid_at_width_one():
    anchors = space().anchors()
    assert all(c.width == 1.0 for c in anchors)
    keys = {c.spec_key for c in anchors}
    assert "float32" in keys and "fixed8" in keys


def test_sample_is_deterministic_and_in_space():
    s = space()
    a = s.sample(generator_for(0, "t"), n_layers=4)
    b = s.sample(generator_for(0, "t"), n_layers=4)
    assert a == b
    assert a.width in s.width_choices
    spec = a.spec()
    layered = getattr(spec, "weight_bits_per_layer", None) or (
        spec.weight_bits,
    ) * 4
    assert all(bits in s.weight_bit_choices for bits in layered)


def test_sample_collapses_uniform_assignments():
    s = space(weight_bit_choices=(8,))  # only one menu entry
    candidate = s.sample(generator_for(0, "u"), n_layers=3)
    assert not isinstance(candidate.spec(), LayeredPrecisionSpec)
    assert candidate.spec_key == "fixed8"


def test_mutate_stays_in_space():
    s = space()
    candidate = Candidate("lenet_small", 1.0, "fixed8")
    for i in range(32):
        child = s.mutate(candidate, generator_for(0, "m", i), n_layers=4)
        assert child is not None
        assert child.width in s.width_choices
        spec = child.spec()
        layered = getattr(spec, "weight_bits_per_layer", None) or (
            spec.weight_bits,
        ) * 4
        assert all(bits in s.weight_bit_choices for bits in layered)


def test_mutate_rejects_out_of_space_parents():
    s = space()
    rng = generator_for(0, "r")
    # float32 anchor: different kind
    assert s.mutate(Candidate("lenet_small", 1.0, "float32"), rng, 4) is None
    # width not on the menu
    assert s.mutate(Candidate("lenet_small", 0.75, "fixed8"), rng, 4) is None
    # bits not on the menu
    assert s.mutate(Candidate("lenet_small", 1.0, "fixed16"), rng, 4) is None


def test_mutated_layered_specs_round_trip_through_parse():
    s = space()
    candidate = Candidate("lenet_small", 1.0, "fixed:2,4,8,8:8")
    for i in range(16):
        child = s.mutate(candidate, generator_for(1, "rt", i), n_layers=4)
        spec = PrecisionSpec.parse(child.spec_key)
        assert spec.key == child.spec_key
