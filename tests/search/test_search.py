"""PrecisionSearch end-to-end: frontiers, reproducibility, publishing.

The module-scoped ``searched`` fixture runs one real (tiny) search and
every test inspects it, so the expensive part happens once.  Its
configuration is deliberately frozen: seed 0 over lenet_small with
widths {0.5, 1.0} and bits {2, 4, 8} deterministically discovers
scaled/layered points that dominate the fixed paper grid.
"""

import json
import os

import pytest

from repro.core.sweep import SweepConfig
from repro.errors import ConfigError
from repro.search import PrecisionSearch, SearchConfig, SearchSpace

BUDGET_UJ = 50.0


def make_config(**overrides):
    space = SearchSpace(
        task="lenet_small",
        width_choices=(0.5, 1.0),
        weight_bit_choices=(2, 4, 8),
    )
    kwargs = dict(
        space=space,
        generations=2,
        population=3,
        survivors=3,
        energy_budget_uj=BUDGET_UJ,
        seed=0,
        sweep=SweepConfig(float_epochs=1, qat_epochs=1),
        n_train=256,
        n_test=96,
    )
    kwargs.update(overrides)
    return SearchConfig(**kwargs)


def frontier_tuples(result):
    return [(p.label, p.accuracy, p.energy_uj) for p in result.frontier]


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("search-cache"))


@pytest.fixture(scope="module")
def searched(cache_root):
    search = PrecisionSearch(make_config(), cache=cache_root)
    return search, search.run()


def test_search_produces_an_energy_sorted_frontier(searched):
    _, result = searched
    assert result.generations_run == 2
    assert len(result.frontier) >= 2
    energies = [p.energy_uj for p in result.frontier]
    assert energies == sorted(energies)
    # the budget filtered the frontier
    assert all(p.energy_uj <= BUDGET_UJ for p in result.frontier)
    # anchors plus bred candidates were all evaluated
    anchors = len(result.grid_frontier)
    assert len(result.evaluated) > anchors


def test_search_discovers_points_dominating_the_fixed_grid(searched):
    _, result = searched
    assert result.dominates_fixed_grid
    grid_labels = {p.label for p in result.grid_frontier}
    assert all(p.label not in grid_labels for p in result.dominating)


def test_search_writes_resume_state(searched):
    search, result = searched
    assert result.state_path is not None and os.path.exists(result.state_path)
    with open(result.state_path) as handle:
        state = json.load(handle)
    assert state["fingerprint"] == search.space.fingerprint()
    assert state["generations_done"] == result.generations_run


def test_resume_replays_bitwise_from_cache(searched, cache_root):
    _, first = searched
    resumed = PrecisionSearch(make_config(), cache=cache_root).run(resume=True)
    assert frontier_tuples(resumed) == frontier_tuples(first)
    assert resumed.cache_misses == 0
    assert resumed.cache_hits > 0


def test_resume_requires_a_cache():
    with pytest.raises(ConfigError, match="resume"):
        PrecisionSearch(make_config(), cache=None).run(resume=True)


def test_resume_rejects_a_different_search_space(searched, cache_root):
    search, _ = searched
    other = PrecisionSearch(
        make_config(space=SearchSpace(
            task="lenet_small",
            width_choices=(0.5, 1.0),
            weight_bit_choices=(4, 8),
        )),
        cache=cache_root,
    )
    # plant the first search's state where the second expects its own
    with open(search.state_path()) as handle:
        state = json.load(handle)
    with open(other.state_path(), "w") as handle:
        json.dump(state, handle)
    with pytest.raises(ConfigError, match="fingerprint"):
        other.run(resume=True)


def test_worker_count_does_not_change_results(tmp_path):
    config = make_config(generations=0, population=2, n_train=192, n_test=64)
    serial = PrecisionSearch(
        make_config(generations=0, population=2, n_train=192, n_test=64),
        cache=str(tmp_path / "c1"),
    ).run()
    config.workers = 3
    parallel = PrecisionSearch(config, cache=str(tmp_path / "c2")).run()
    assert [
        (e.candidate.key, e.result.accuracy, e.energy_uj)
        for e in serial.evaluated
    ] == [
        (e.candidate.key, e.result.accuracy, e.energy_uj)
        for e in parallel.evaluated
    ]


def test_publish_promotes_the_frontier(searched, tmp_path):
    search, result = searched
    published = search.publish(result, str(tmp_path / "registry"))
    assert published["promoted"], published["rejected"]
    channel = published["channel"]
    assert channel.name == "search-lenet_small"
    active = channel.active()
    assert active is not None
    # manifests carry search provenance and the salted cache key
    promoted_labels = {label for label, _ in published["promoted"]}
    for label in promoted_labels:
        manifest = published["artifacts"][label]
        assert manifest.extra["search_fingerprint"] == search.space.fingerprint()
        assert manifest.sweep_cache_key
    # the budget became the promotion gate's absolute cap
    for label, _ in published["promoted"]:
        assert published["artifacts"][label].energy_uj_per_image <= BUDGET_UJ


def test_search_counters_flow_to_metrics(cache_root):
    from repro.obs.metrics import get_metrics

    metrics = get_metrics()
    gen_before = metrics.counter("search.generation").value
    eval_before = metrics.counter("search.evaluated").value
    hits_before = metrics.counter("search.cache_hits").value
    result = PrecisionSearch(make_config(), cache=cache_root).run()
    assert metrics.counter("search.generation").value - gen_before == 3
    assert (metrics.counter("search.evaluated").value - eval_before
            == len(result.evaluated))
    assert metrics.counter("search.cache_hits").value - hits_before > 0
