"""Property-based integration tests over the quantized pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core, nn
from tests.conftest import make_micro_net

PRECISION_KEYS = ["float32", "fixed32", "fixed16", "fixed8", "fixed4", "pow2", "binary"]


@settings(max_examples=12, deadline=None)
@given(key=st.sampled_from(PRECISION_KEYS), seed=st.integers(0, 5))
def test_quantized_forward_finite_and_shaped(key, seed):
    """Quantized inference must always produce finite logits of the
    right shape, for every precision and random input."""
    net = make_micro_net(seed=seed)
    qnet = core.QuantizedNetwork(net, core.get_precision(key))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((3, 1, 6, 6)).astype(np.float32)
    qnet.calibrate(x)
    logits = qnet.predict(x)
    assert logits.shape == (3, 3)
    assert np.all(np.isfinite(logits))


@settings(max_examples=10, deadline=None)
@given(key=st.sampled_from(PRECISION_KEYS))
def test_swap_restore_is_lossless(key):
    """Entering and leaving quantized mode must restore shadow weights
    bit-exactly, for every precision."""
    net = make_micro_net(seed=0)
    qnet = core.QuantizedNetwork(net, core.get_precision(key))
    before = [p.data.copy() for p in net.parameters()]
    with qnet.quantized_weights():
        pass
    for param, original in zip(net.parameters(), before):
        assert np.array_equal(param.data, original)


@settings(max_examples=8, deadline=None)
@given(
    key=st.sampled_from(["fixed8", "fixed16", "pow2"]),
    scale=st.floats(0.25, 4.0),
)
def test_calibration_makes_prediction_deterministic(key, scale):
    """After calibration, repeated quantized inference on the same
    input is exactly reproducible (frozen ranges, no hidden state)."""
    net = make_micro_net(seed=1)
    qnet = core.QuantizedNetwork(net, core.get_precision(key))
    rng = np.random.default_rng(2)
    x = (scale * rng.standard_normal((4, 1, 6, 6))).astype(np.float32)
    qnet.calibrate(x)
    first = qnet.predict(x)
    second = qnet.predict(x)
    assert np.array_equal(first, second)


@settings(max_examples=6, deadline=None)
@given(steps=st.integers(1, 3))
def test_qat_steps_preserve_shadow_dtype_and_shape(steps):
    net = make_micro_net(seed=3)
    qnet = core.QuantizedNetwork(net, core.get_precision("binary"))
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 1, 6, 6)).astype(np.float32)
    y = rng.integers(0, 3, size=8)
    qnet.calibrate(x)
    trainer = core.QATTrainer(
        qnet, nn.SGD(net.parameters(), lr=0.01), batch_size=4,
        rng=np.random.default_rng(1),
    )
    for _ in range(steps):
        trainer.network.train_mode()
        trainer.train_step(x[:4], y[:4])
    for param in net.parameters():
        assert param.data.dtype == np.float32
        assert np.all(np.isfinite(param.data))
