"""End-to-end integration: the full study pipeline on a tiny budget.

Train float -> warm-start QAT at a low precision -> evaluate accuracy
-> model hardware energy -> build Pareto points.  This exercises every
subsystem (data, nn, core, zoo, hw) in one flow.
"""

import numpy as np
import pytest

from repro import core, hw, nn
from repro.core.pareto import DesignPoint, pareto_frontier
from repro.data import load_dataset
from repro.zoo import build_network, network_info


@pytest.fixture(scope="module")
def split():
    return load_dataset("digits", n_train=300, n_test=150, seed=0)


@pytest.fixture(scope="module")
def float_net(split):
    net = build_network("lenet_small", seed=0)
    trainer = nn.Trainer(
        net,
        nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=4)
    return net


def test_full_pipeline(split, float_net):
    # 1. float baseline learns the task
    logits = float_net.predict(split.test.images)
    float_accuracy = nn.accuracy(logits, split.test.labels)
    assert float_accuracy > 0.8

    # 2. QAT fine-tune at 8-bit fixed point from the float warm start
    spec = core.get_precision("fixed8")
    qat_net = build_network("lenet_small", seed=0)
    nn.transfer_weights(float_net, qat_net)
    qnet = core.QuantizedNetwork(qat_net, spec)
    qnet.calibrate(split.train.images[:128])
    trainer = core.QATTrainer(
        qnet,
        nn.SGD(qat_net.parameters(), lr=0.005, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(1),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=1)
    quant_accuracy = qnet.evaluate(split.test.images, split.test.labels)
    assert quant_accuracy > float_accuracy - 0.1, "8-bit must track float"

    # 3. hardware energy on the paper's LeNet
    info = network_info("lenet")
    energy_model = hw.EnergyModel()
    paper_net = build_network("lenet")
    float_energy = energy_model.evaluate(
        paper_net, info.input_shape, core.get_precision("float32")
    )
    quant_energy = energy_model.evaluate(paper_net, info.input_shape, spec)
    saving = quant_energy.savings_vs(float_energy)
    assert saving > 75.0  # paper: 85.41 % for fixed (8,8)

    # 4. Pareto analysis places the quantized point on the frontier
    points = [
        DesignPoint("float32", 100 * float_accuracy, float_energy.energy_uj),
        DesignPoint("fixed8", 100 * quant_accuracy, quant_energy.energy_uj),
    ]
    frontier = pareto_frontier(points)
    assert any(p.label == "fixed8" for p in frontier)


def test_save_load_quantized_workflow(tmp_path, split, float_net):
    """Persist a trained network, reload, quantize post-training."""
    path = str(tmp_path / "lenet_small.npz")
    nn.save_network_weights(float_net, path)
    fresh = build_network("lenet_small", seed=0)
    nn.load_network_weights(fresh, path)
    qnet = core.post_training_quantize(
        fresh, core.get_precision("fixed16"), split.train.images[:128]
    )
    accuracy = qnet.evaluate(split.test.images, split.test.labels)
    plain = nn.accuracy(fresh.predict(split.test.images), split.test.labels)
    assert accuracy == pytest.approx(plain, abs=0.05), "16-bit PTQ is near-lossless"


def test_precision_sweep_orders_energy(split):
    """Across the sweep, accuracy-energy points must show the paper's
    qualitative trade-off: energy strictly decreasing with precision."""
    energy_model = hw.EnergyModel()
    info = network_info("lenet")
    paper_net = build_network("lenet")
    energies = [
        energy_model.evaluate(paper_net, info.input_shape, spec).energy_uj
        for spec in core.PAPER_PRECISIONS
    ]
    assert energies[0] == max(energies)
    assert energies[-1] == min(energies)
