"""Property test: randomly composed architectures stay consistent.

Hypothesis builds random (but valid) conv/pool/dense stacks; for each
we check the three invariants every subsystem relies on:

1. ``output_shape`` agrees with the actual forward pass;
2. ``backward`` returns an input-shaped gradient and every parameter
   receives a gradient;
3. the scheduler's MAC accounting matches the layers' own counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.hw.accelerator import Accelerator
from repro.hw.scheduler import TileScheduler


@st.composite
def random_network(draw):
    """A random valid conv stack for 1x12x12 inputs, ending in Dense."""
    rng_seed = draw(st.integers(0, 100))
    gen = np.random.default_rng(rng_seed)
    layers = []
    channels, size = 1, 12
    n_blocks = draw(st.integers(1, 3))
    for block in range(n_blocks):
        out_channels = draw(st.integers(1, 6))
        kernel = draw(st.sampled_from([1, 3]))
        padding = draw(st.sampled_from([0, 1]))
        if size + 2 * padding < kernel:
            continue
        layers.append(
            nn.Conv2D(channels, out_channels, kernel, padding=padding, rng=gen)
        )
        channels = out_channels
        size = size + 2 * padding - kernel + 1
        if draw(st.booleans()):
            layers.append(nn.ReLU())
        if size >= 4 and draw(st.booleans()):
            pool_cls = draw(st.sampled_from([nn.MaxPool2D, nn.AvgPool2D]))
            layers.append(pool_cls(2))
            size = -(-(size - 2) // 2) + 1  # ceil mode
    layers.append(nn.Flatten())
    layers.append(nn.Dense(channels * size * size, 3, rng=gen))
    return nn.Sequential(layers, name=f"random{rng_seed}")


@settings(max_examples=20, deadline=None)
@given(net=random_network(), batch=st.integers(1, 3))
def test_shape_trace_matches_forward(net, batch):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((batch, 1, 12, 12)).astype(np.float32)
    out = net.forward(x)
    assert out.shape == (batch,) + net.output_shape((1, 12, 12))


@settings(max_examples=15, deadline=None)
@given(net=random_network())
def test_backward_reaches_every_parameter(net):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, 1, 12, 12)).astype(np.float32)
    y = np.array([0, 2])
    net.zero_grad()
    logits = net.forward(x)
    _, grad = nn.SoftmaxCrossEntropy().compute(logits, y)
    grad_in = net.backward(grad)
    assert grad_in.shape == x.shape
    assert np.all(np.isfinite(grad_in))
    for param in net.parameters():
        assert np.all(np.isfinite(param.grad))


@settings(max_examples=15, deadline=None)
@given(net=random_network())
def test_scheduler_mac_accounting(net):
    scheduler = TileScheduler(Accelerator.for_precision("fixed16"))
    schedule = scheduler.schedule(net, (1, 12, 12))
    shapes = net.layer_shapes((1, 12, 12))
    expected = sum(
        layer.macs(in_shape)
        for layer, (in_shape, _) in zip(net.layers, shapes)
        if hasattr(layer, "macs")
    )
    assert schedule.total_macs == expected
    assert all(work.cycles > 0 for work in schedule.layers)
