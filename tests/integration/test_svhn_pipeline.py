"""Second end-to-end path: the SVHN-role task with power-of-two weights.

Complements the digits pipeline test with colour input, the ConvNet
topology, and the pow2 quantizer family.
"""

import numpy as np
import pytest

from repro import core, hw, nn
from repro.data import load_dataset
from repro.zoo import build_network, network_info


@pytest.fixture(scope="module")
def setup():
    split = load_dataset("svhn", n_train=300, n_test=120, seed=0)
    net = build_network("convnet_small", seed=0)
    trainer = nn.Trainer(
        net,
        nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=3)
    return split, net


def test_pow2_qat_pipeline(setup):
    split, net = setup
    spec = core.get_precision("pow2")
    qnet = core.QuantizedNetwork(net, spec)
    qnet.calibrate(split.train.images[:128])
    trainer = core.QATTrainer(
        qnet, nn.SGD(net.parameters(), lr=0.005, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(1),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=1)
    accuracy = qnet.evaluate(split.test.images, split.test.labels)
    assert accuracy > 0.15  # above chance on a genuinely hard tiny budget

    # all quantized weights are signed powers of two (or zero)
    with qnet.quantized_weights():
        for param in net.weight_parameters():
            nonzero = param.data[param.data != 0]
            mantissa, _ = np.frexp(np.abs(nonzero))
            assert np.allclose(mantissa, 0.5)


def test_convnet_energy_pairs_with_accuracy(setup):
    _, net = setup
    info = network_info("convnet")
    model = hw.EnergyModel()
    paper_net = build_network("convnet")
    pow2 = model.evaluate(paper_net, info.input_shape, core.get_precision("pow2"))
    baseline = model.evaluate(
        paper_net, info.input_shape, core.get_precision("float32")
    )
    # paper Table IV: pow2 saves 84.79% on SVHN
    assert pow2.savings_vs(baseline) == pytest.approx(84.79, abs=3.0)
