"""Forward-pass smoke tests on the full paper architectures.

These are the exact Table I/II networks; a single small batch through
each proves the architectures are runnable end to end (shapes already
validated cheaply elsewhere).
"""

import numpy as np
import pytest

from repro.zoo import build_network, network_info

PAPER_NETWORKS = ["lenet", "convnet", "alex", "alex+", "alex++"]


@pytest.mark.parametrize("name", PAPER_NETWORKS)
def test_forward_pass(name):
    info = network_info(name)
    net = build_network(name)
    net.eval_mode()
    x = np.random.default_rng(0).standard_normal(
        (2,) + info.input_shape
    ).astype(np.float32)
    logits = net.forward(x)
    assert logits.shape == (2, 10)
    assert np.all(np.isfinite(logits))


@pytest.mark.parametrize("name", PAPER_NETWORKS)
def test_backward_pass(name):
    info = network_info(name)
    net = build_network(name)
    x = np.random.default_rng(1).standard_normal(
        (2,) + info.input_shape
    ).astype(np.float32)
    out = net.forward(x)
    grad_in = net.backward(np.ones_like(out) / out.size)
    assert grad_in.shape == x.shape
    assert all(np.any(p.grad != 0) for p in net.parameters()), (
        "every parameter should receive gradient"
    )
