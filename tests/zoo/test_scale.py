"""Width-scaled architecture variants (``lenet@x0.5`` etc.)."""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.zoo import build_network, network_info
from repro.zoo.scale import build_scaled, parse_scaled_name, scaled_name


def test_name_round_trip():
    assert scaled_name("lenet", 0.5) == "lenet@x0.5"
    assert scaled_name("lenet", 1.0) == "lenet@x1"
    assert parse_scaled_name("lenet@x0.5") == ("lenet", 0.5)
    assert parse_scaled_name("alex_small@x1.25") == ("alex_small", 1.25)
    assert parse_scaled_name("lenet") is None
    assert parse_scaled_name("@x0.5") is None


@pytest.mark.parametrize("base,width", [
    ("lenet_small", 0.5), ("lenet_small", 1.5), ("convnet_small", 2.0),
    ("lenet", 0.75),
])
def test_scaled_networks_keep_io_contract(base, width):
    info = network_info(base)
    network = build_scaled(base, width, seed=0)
    x = np.random.default_rng(0).normal(size=(2,) + info.input_shape)
    out = network.forward(x.astype(np.float64))
    base_out = build_network(base, seed=0).forward(x.astype(np.float64))
    # the classifier layer is never scaled: class count is preserved
    assert out.shape == base_out.shape


def test_scaling_changes_parameter_count_monotonically():
    def n_params(net):
        return sum(p.data.size for p in net.parameters())

    small = n_params(build_scaled("lenet_small", 0.5))
    base = n_params(build_network("lenet_small"))
    large = n_params(build_scaled("lenet_small", 1.5))
    assert small < base < large


def test_scaled_weights_are_deterministic_per_seed():
    a = build_scaled("lenet_small", 0.5, seed=3)
    b = build_scaled("lenet_small", 0.5, seed=3)
    c = build_scaled("lenet_small", 0.5, seed=4)
    for pa, pb in zip(a.parameters(), b.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)
    assert any(
        not np.array_equal(pa.data, pc.data)
        for pa, pc in zip(a.parameters(), c.parameters())
    )


def test_network_info_resolves_scaled_names():
    info = network_info("lenet_small@x0.5")
    base = network_info("lenet_small")
    assert info.input_shape == base.input_shape
    assert info.dataset == base.dataset
    network = build_network("lenet_small@x0.5", seed=0)
    assert network.name == "lenet_small@x0.5"
    # memoized: the same info object comes back
    assert network_info("lenet_small@x0.5") is info


def test_scaled_builders_are_picklable():
    info = network_info("lenet_small@x0.5")
    rebuilt = pickle.loads(pickle.dumps(info.builder))
    network = rebuilt(0)
    for pa, pb in zip(network.parameters(),
                      build_network("lenet_small@x0.5", seed=0).parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_unknown_base_and_bad_width_raise():
    with pytest.raises(ConfigurationError):
        build_scaled("not_a_network", 0.5)
    with pytest.raises(ConfigurationError):
        build_scaled("lenet_small", 0.0)
    with pytest.raises(ConfigurationError):
        network_info("nope@x0.5")
