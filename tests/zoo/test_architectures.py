"""Network zoo tests: shapes, parameter counts, registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.zoo import (
    NETWORK_BUILDERS,
    build_network,
    network_info,
)

#: expected parameter counts derived from Tables I/II (weights + biases)
EXPECTED_PARAMS = {
    "lenet": (20 * 25 + 20) + (50 * 20 * 25 + 50) + (800 * 500 + 500) + (5000 + 10),
    "convnet": (16 * 3 * 25 + 16) + (512 * 16 * 49 + 512)
    + (8192 * 20 + 20) + (200 + 10),
    "alex": (32 * 3 * 25 + 32) + (32 * 32 * 25 + 32) + (64 * 32 * 25 + 64)
    + (1024 * 10 + 10),
    "alex+": (64 * 3 * 25 + 64) + (64 * 64 * 25 + 64) + (128 * 64 * 25 + 128)
    + (2048 * 10 + 10),
    "alex++": (64 * 3 * 9 + 64) + (128 * 64 * 9 + 128) + (256 * 128 * 9 + 256)
    + (4096 * 512 + 512) + (512 * 10 + 10),
}


@pytest.mark.parametrize("name", sorted(EXPECTED_PARAMS))
def test_parameter_counts_match_tables(name):
    assert build_network(name).parameter_count() == EXPECTED_PARAMS[name]


@pytest.mark.parametrize("name", sorted(NETWORK_BUILDERS))
def test_output_is_ten_classes(name):
    info = network_info(name)
    net = build_network(name)
    assert net.output_shape(info.input_shape) == (10,)


@pytest.mark.parametrize("name", ["lenet_small", "convnet_small", "alex_small"])
def test_small_proxies_forward_pass(name):
    info = network_info(name)
    net = build_network(name)
    x = np.zeros((2,) + info.input_shape, dtype=np.float32)
    assert net.forward(x).shape == (2, 10)


def test_alex_shape_chain():
    """32 -> 16 -> 8 -> 4 through the three ceil-mode pools."""
    net = build_network("alex")
    shapes = dict(
        (layer.name, out) for layer, (inp, out) in
        zip(net.layers, net.layer_shapes((3, 32, 32)))
    )
    assert shapes["pool1"] == (32, 16, 16)
    assert shapes["pool2"] == (32, 8, 8)
    assert shapes["pool3"] == (64, 4, 4)


def test_lenet_shape_chain():
    net = build_network("lenet")
    shapes = dict(
        (layer.name, out) for layer, (inp, out) in
        zip(net.layers, net.layer_shapes((1, 28, 28)))
    )
    assert shapes["conv1"] == (20, 24, 24)
    assert shapes["pool1"] == (20, 12, 12)
    assert shapes["conv2"] == (50, 8, 8)
    assert shapes["pool2"] == (50, 4, 4)


def test_plus_doubles_channels():
    alex = build_network("alex")
    plus = build_network("alex+")
    alex_convs = [l for l in alex.layers if type(l).__name__ == "Conv2D"]
    plus_convs = [l for l in plus.layers if type(l).__name__ == "Conv2D"]
    for a, p in zip(alex_convs, plus_convs):
        assert p.out_channels == 2 * a.out_channels


def test_plus_plus_uses_3x3_kernels():
    net = build_network("alex++")
    convs = [l for l in net.layers if type(l).__name__ == "Conv2D"]
    assert all(conv.kernel_size == 3 for conv in convs)
    assert [conv.out_channels for conv in convs] == [64, 128, 256]


def test_builders_deterministic():
    a, b = build_network("lenet", seed=3), build_network("lenet", seed=3)
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert np.array_equal(pa.data, pb.data)


def test_registry_metadata():
    info = network_info("convnet")
    assert info.dataset == "svhn"
    assert info.input_shape == (3, 32, 32)
    assert info.table == "Table I"


def test_unknown_network_raises():
    with pytest.raises(ConfigurationError):
        network_info("resnet50")


def test_small_variants_preserve_scaling_relationships():
    small = build_network("alex_small").parameter_count()
    plus = build_network("alex_small+").parameter_count()
    plus_plus = build_network("alex_small++").parameter_count()
    assert small < plus < plus_plus
