"""Shared fixtures: tiny datasets and networks for fast tests."""

import numpy as np
import pytest

from repro import nn
from repro.data import load_dataset


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_digits():
    """Small digits split reused across the session (read-only)."""
    return load_dataset("digits", n_train=200, n_test=100, seed=0)


def make_tiny_cnn(seed: int = 0) -> nn.Sequential:
    """A minimal conv net for 1x28x28 inputs, 10 classes."""
    gen = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(1, 4, kernel_size=5, name="conv1", rng=gen),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(4, 8, kernel_size=5, name="conv2", rng=gen),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Flatten(name="flatten"),
            nn.Dense(8 * 4 * 4, 10, name="ip1", rng=gen),
        ],
        name="tiny_cnn",
    )


@pytest.fixture
def tiny_cnn():
    return make_tiny_cnn()


def make_micro_net(seed: int = 0) -> nn.Sequential:
    """Very small net for gradient checks (few parameters)."""
    gen = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(1, 2, kernel_size=3, name="conv", rng=gen),
            nn.ReLU(name="relu"),
            nn.Flatten(name="flatten"),
            nn.Dense(2 * 4 * 4, 3, name="fc", rng=gen),
        ],
        name="micro",
    )
