"""Fused-vs-reference bitwise parity and buffer-reuse properties.

The fused backend's whole contract is "same bits, fewer passes": for
every Table III precision the fused kernels must reproduce the
reference layer-by-layer path *bitwise*, and its workspaces must stop
allocating once warm.  These tests pin both halves.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import backends, core
from repro.data import load_dataset
from repro.zoo import build_network, network_info
from tests.conftest import make_tiny_cnn

#: Every precision spec of the paper's Table III.
PRECISION_KEYS = [
    "float32", "fixed32", "fixed16", "fixed8", "fixed4", "pow2", "binary",
]

_SPLITS = {}


def _split(dataset):
    if dataset not in _SPLITS:
        _SPLITS[dataset] = load_dataset(dataset, n_train=48, n_test=24, seed=0)
    return _SPLITS[dataset]


def _assert_bitwise(reference, fused, context):
    assert reference.shape == fused.shape, context
    assert reference.dtype == fused.dtype, context
    if not np.array_equal(reference, fused):  # fast path for the message
        worst = float(np.max(np.abs(reference.astype(np.float64) - fused)))
        raise AssertionError(f"{context}: max |delta| = {worst}")
    assert reference.tobytes() == fused.tobytes(), context


@settings(max_examples=21, deadline=None)
@given(
    key=st.sampled_from(PRECISION_KEYS),
    net_name=st.sampled_from(["lenet", "convnet"]),
    calibrated=st.booleans(),
    batch_size=st.integers(1, 7),
    n_images=st.integers(1, 10),
)
def test_fused_matches_reference_bitwise(
    key, net_name, calibrated, batch_size, n_images
):
    """Property: for every Table III precision, on real zoo networks,
    calibrated or not, any batch split, the fused backend's logits are
    bitwise identical to the reference backend's."""
    split = _split(network_info(net_name).dataset)
    qnet = core.QuantizedNetwork(build_network(net_name, seed=0), key)
    if calibrated:
        qnet.calibrate(split.train.images[:32])
    x = split.test.images[:n_images]
    with qnet.quantized_weights():
        reference = backends.get("reference").predict(
            qnet.pipeline, x, batch_size=batch_size
        )
        fused = backends.get("fused").predict(
            qnet.pipeline, x, batch_size=batch_size
        )
    _assert_bitwise(
        reference, fused,
        f"{net_name}/{key} calibrated={calibrated} batch={batch_size}",
    )


@settings(max_examples=25, deadline=None)
@given(
    key=st.sampled_from(PRECISION_KEYS),
    seed=st.integers(0, 7),
    scale=st.sampled_from([1e-4, 0.1, 1.0, 30.0, 1e4]),
)
def test_fused_matches_reference_on_adversarial_inputs(key, seed, scale):
    """Property: parity holds for extreme input magnitudes (deep in the
    saturation and underflow regimes of every quantizer)."""
    qnet = core.QuantizedNetwork(make_tiny_cnn(seed=seed), key)
    rng = np.random.default_rng(seed)
    x = (scale * rng.standard_normal((3, 1, 28, 28))).astype(np.float32)
    with qnet.quantized_weights():
        reference = backends.get("reference").predict(qnet.pipeline, x)
        fused = backends.get("fused").predict(qnet.pipeline, x)
    _assert_bitwise(reference, fused, f"tiny/{key} seed={seed} scale={scale}")


def test_fused_parity_through_infer_and_freeze(tiny_digits):
    """The public entry points agree across backends too."""
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    x = tiny_digits.test.images[:9]
    reference = qnet.infer(x, batch_size=4, backend="reference")
    fused = qnet.infer(x, batch_size=4, backend="fused")
    _assert_bitwise(reference, fused, "infer")

    frozen = qnet.freeze(backend="fused")
    try:
        _assert_bitwise(reference, frozen.predict(x, batch_size=4), "frozen")
    finally:
        frozen.thaw()


def test_fused_falls_back_on_unknown_layers(tiny_digits):
    """A layer kind without a fused kernel runs through its own forward
    and the surrounding fused units still produce bitwise parity."""
    from repro import nn

    gen = np.random.default_rng(0)
    net = nn.Sequential(
        [
            nn.Conv2D(1, 4, kernel_size=5, name="conv1", rng=gen),
            nn.Sigmoid(name="sig1"),  # no fused kernel for sigmoid
            nn.MaxPool2D(2, name="pool1"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 12 * 12, 10, name="ip1", rng=gen),
        ],
        name="oddball",
    )
    qnet = core.QuantizedNetwork(net, "fixed8")
    qnet.calibrate(tiny_digits.train.images[:16])
    x = tiny_digits.test.images[:5]
    reference = qnet.infer(x, backend="reference")
    fused = qnet.infer(x, backend="fused")
    _assert_bitwise(reference, fused, "fallback")


# ----------------------------------------------------------------------
# Buffer reuse
# ----------------------------------------------------------------------
def test_workspace_allocations_stop_after_warmup(tiny_digits):
    """Steady-state batches must hit preallocated buffers, not allocate."""
    fused = backends.FusedBackend()
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    x = tiny_digits.test.images[:16]
    with qnet.quantized_weights():
        fused.predict(qnet.pipeline, x, batch_size=8)  # warm up
        workspace = fused.workspace_for(qnet.pipeline)
        allocations = workspace.allocations
        for _ in range(3):
            fused.predict(qnet.pipeline, x, batch_size=8)
        assert workspace.allocations == allocations, (
            "steady-state batches allocated new buffers"
        )
        assert workspace.hits > 0
        assert len(workspace) > 0 and workspace.nbytes > 0


def test_workspace_revalidates_on_batch_size_change(tiny_digits):
    """Changing the batch size must produce fresh, correctly shaped
    buffers (keyed by shape), never a stale-size result."""
    fused = backends.FusedBackend()
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    x = tiny_digits.test.images[:12]
    with qnet.quantized_weights():
        out8 = fused.predict(qnet.pipeline, x, batch_size=8)
        workspace = fused.workspace_for(qnet.pipeline)
        before = workspace.allocations
        out5 = fused.predict(qnet.pipeline, x, batch_size=5)
        assert workspace.allocations > before, (
            "new batch shape must allocate shape-matched buffers"
        )
        reference = backends.get("reference").predict(
            qnet.pipeline, x, batch_size=5
        )
    _assert_bitwise(out8, out5, "batch-size change")
    _assert_bitwise(reference, out5, "batch-size change vs reference")


def test_fused_output_is_not_a_workspace_view(tiny_digits):
    """Returned logits must be caller-owned: a later batch through the
    same workspace cannot mutate an earlier result."""
    fused = backends.get("fused")
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    with qnet.quantized_weights():
        first = fused.predict(qnet.pipeline, tiny_digits.test.images[:4])
        snapshot = first.copy()
        fused.predict(qnet.pipeline, tiny_digits.test.images[4:8])
    np.testing.assert_array_equal(first, snapshot)


def test_fused_does_not_write_caller_input(tiny_digits):
    """The in-place fast paths must never touch the caller's array."""
    fused = backends.get("fused")
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    x = tiny_digits.test.images[:6].copy()
    snapshot = x.copy()
    with qnet.quantized_weights():
        fused.predict(qnet.pipeline, x)
    np.testing.assert_array_equal(x, snapshot)


def test_training_mode_uses_reference_path(tiny_digits):
    """In train mode the fused backend defers to Sequential.forward so
    range trackers keep observing."""
    fused = backends.get("fused")
    qnet = core.QuantizedNetwork(make_tiny_cnn(), "fixed8")
    qnet.pipeline.train_mode()
    try:
        with qnet.quantized_weights():
            out = fused.run(qnet.pipeline, tiny_digits.train.images[:4])
    finally:
        qnet.pipeline.eval_mode()
    assert out.shape == (4, 10)
    trackers = [
        layer.tracker
        for layer in qnet.pipeline.layers
        if isinstance(layer, core.FakeQuantLayer)
    ]
    assert any(tracker.initialized for tracker in trackers), (
        "training-mode forwards must feed the range trackers"
    )


def test_stochastic_rounding_units_fall_back(tiny_digits):
    """A stochastic-rounding quantizer is not exactly reproducible by
    the fused kernels, so its units must use the layer's own forward."""
    spec = core.get_precision("fixed8")
    qnet = core.QuantizedNetwork(
        make_tiny_cnn(),
        spec,
        activation_factory=lambda: core.FixedPointQuantizer(
            8, stochastic_rounding=True, rng=np.random.default_rng(0)
        ),
    )
    fused = backends.FusedBackend()
    plan_fusable = [
        fusable
        for unit, fusable in zip(
            backends.compile_units(qnet.pipeline),
            fused._plan(qnet.pipeline).fusable,
        )
        if unit.kind == "quant" or unit.quant is not None
    ]
    assert plan_fusable and not any(plan_fusable), (
        "stochastic-rounding quant units must be non-fusable"
    )
