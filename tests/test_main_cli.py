"""Top-level CLI tests (fast paths; training uses tiny budgets)."""

import json
import os

import pytest

from repro.cli import main


def test_hw_report(capsys):
    assert main(["hw-report", "--precision", "pow2"]) == 0
    out = capsys.readouterr().out
    assert "Powers of Two (6,16)" in out
    assert "buffers:" in out


def test_energy(capsys):
    assert main(["energy", "--network", "lenet"]) == 0
    out = capsys.readouterr().out
    assert "Binary Net (1,16)" in out
    assert "Energy uJ" in out


def test_export_rtl_stdout(capsys):
    assert main(["export-rtl", "--precision", "binary",
                 "--neurons", "2", "--synapses", "2"]) == 0
    out = capsys.readouterr().out
    assert "module wb_binary_16" in out
    assert "module nfu_binary_2x2" in out


def test_export_rtl_file(tmp_path, capsys):
    path = str(tmp_path / "nfu.v")
    assert main(["export-rtl", "--precision", "fixed8", "--output", path,
                 "--neurons", "2", "--synapses", "2"]) == 0
    assert os.path.exists(path)
    with open(path) as handle:
        assert "wb_fixed_8x8" in handle.read()


def test_train_and_evaluate_roundtrip(tmp_path, capsys):
    weights = str(tmp_path / "w.npz")
    code = main([
        "train", "--network", "lenet_small", "--n-train", "200",
        "--n-test", "100", "--epochs", "2", "--output", weights,
    ])
    assert code == 0
    assert os.path.exists(weights)
    out = capsys.readouterr().out
    assert "float32 test accuracy" in out

    code = main([
        "evaluate", "--network", "lenet_small", "--weights", weights,
        "--n-train", "200", "--n-test", "100",
        "--precisions", "float32", "fixed8",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Fixed-Point (8,8)" in out


def test_train_with_qat(tmp_path, capsys):
    code = main([
        "train", "--network", "lenet_small", "--n-train", "200",
        "--n-test", "100", "--epochs", "2", "--precision", "binary",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Binary Net (1,16) test accuracy" in out


def test_profile_prints_per_layer_table(capsys):
    code = main([
        "profile", "--network", "lenet_small", "--precision", "fixed8",
        "--limit", "16", "--calibration", "16",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "profile: lenet_small" in out
    assert "Fixed-Point (8,8)" in out
    for needle in ("layer", "fwd ms", "MFLOPs", "KB moved", "quant_rms",
                   "TOTAL"):
        assert needle in out, needle


def test_profile_accepts_spec_strings(capsys):
    code = main([
        "profile", "--network", "lenet_small", "--precision", "fixed:4:8",
        "--limit", "8", "--calibration", "8",
    ])
    assert code == 0
    assert "Fixed-Point (4,8)" in capsys.readouterr().out


def test_profile_json_output(capsys):
    code = main([
        "profile", "--network", "lenet_small", "--precision", "fixed8",
        "--limit", "8", "--calibration", "8", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["network"] == "lenet_small"
    assert payload["precision"] == "fixed8"
    assert payload["images"] == 8
    assert payload["total_flops"] > 0
    assert payload["total_bytes"] > 0
    layers = {row["name"]: row for row in payload["layers"]}
    conv_rows = [row for row in payload["layers"]
                 if row["layer_type"] == "Conv2D"]
    assert conv_rows and all(row["flops"] > 0 for row in conv_rows)
    assert any("quant_rms" in row for row in layers.values())
    assert "histograms" in payload["metrics"]


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_unknown_network_rejected():
    with pytest.raises(SystemExit):
        main(["energy", "--network", "resnet"])
