"""QuantizedNetwork wrapper tests."""

import warnings

import numpy as np
import pytest

from repro import core, nn
from repro.errors import ConfigurationError
from tests.conftest import make_tiny_cnn


@pytest.fixture
def qnet():
    return core.QuantizedNetwork(make_tiny_cnn(), core.get_precision("fixed8"))


def test_make_quantizers_dispatch():
    wq, act_factory = core.make_quantizers(core.get_precision("fixed8"))
    assert isinstance(wq, core.FixedPointQuantizer)
    assert wq.bits == 8
    assert isinstance(act_factory(), core.FixedPointQuantizer)

    wq, act_factory = core.make_quantizers(core.get_precision("pow2"))
    assert isinstance(wq, core.PowerOfTwoQuantizer)
    act = act_factory()
    assert isinstance(act, core.FixedPointQuantizer) and act.bits == 16

    wq, _ = core.make_quantizers(core.get_precision("binary"))
    assert isinstance(wq, core.BinaryQuantizer)

    wq, act_factory = core.make_quantizers(core.get_precision("float32"))
    assert isinstance(wq, core.IdentityQuantizer)
    assert isinstance(act_factory(), core.IdentityQuantizer)


def test_swap_restores_exact_values(qnet):
    originals = [p.data.copy() for p in qnet.network.parameters()]
    qnet._swap_in_quantized()
    changed = any(
        not np.array_equal(p.data, orig)
        for p, orig in zip(qnet.network.parameters(), originals)
    )
    assert changed, "8-bit quantization must alter some weights"
    qnet._restore_shadow()
    for p, orig in zip(qnet.network.parameters(), originals):
        assert np.array_equal(p.data, orig)


def test_double_swap_raises(qnet):
    qnet._swap_in_quantized()
    with pytest.raises(ConfigurationError):
        qnet._swap_in_quantized()
    qnet._restore_shadow()


def test_restore_without_swap_raises(qnet):
    with pytest.raises(ConfigurationError):
        qnet._restore_shadow()


def test_public_swap_shims_warn_once_and_still_work(qnet):
    from repro.core import quantized as quantized_module

    originals = [p.data.copy() for p in qnet.network.parameters()]
    quantized_module._DEPRECATION_WARNED.clear()
    with pytest.warns(DeprecationWarning, match="quantized_weights"):
        qnet.swap_in_quantized()
    with pytest.warns(DeprecationWarning, match="quantized_weights"):
        qnet.restore_shadow()
    for p, orig in zip(qnet.network.parameters(), originals):
        assert np.array_equal(p.data, orig)
    # second use is silent: the warning fires once per entry point
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        qnet.swap_in_quantized()
        qnet.restore_shadow()


def test_context_manager_restores_on_exception(qnet):
    originals = [p.data.copy() for p in qnet.network.parameters()]
    with pytest.raises(RuntimeError):
        with qnet.quantized_weights():
            raise RuntimeError("boom")
    for p, orig in zip(qnet.network.parameters(), originals):
        assert np.array_equal(p.data, orig)


def test_weights_are_quantized_inside_context(qnet):
    with qnet.quantized_weights():
        for param in qnet.network.weight_parameters():
            requantized = qnet.weight_quantizer.quantize(param.data)
            assert np.allclose(param.data, requantized, atol=1e-6)


def test_pipeline_interleaves_fake_quant(qnet):
    names = [type(layer).__name__ for layer in qnet.pipeline.layers]
    assert names[0] == "FakeQuantLayer"          # input quantization
    assert names.count("FakeQuantLayer") >= 4    # convs, dense, activations
    # maxpool / flatten are NOT followed by fake quant
    for i, layer in enumerate(qnet.pipeline.layers[:-1]):
        if type(layer).__name__ in ("MaxPool2D", "Flatten"):
            assert type(qnet.pipeline.layers[i + 1]).__name__ != "FakeQuantLayer"


def test_pipeline_shares_parameters(qnet):
    assert set(id(p) for p in qnet.network.parameters()) == set(
        id(p) for p in qnet.pipeline.parameters()
    )


def test_float_spec_is_lossless(tiny_digits):
    net = make_tiny_cnn()
    qnet = core.QuantizedNetwork(net, core.get_precision("float32"))
    x = tiny_digits.test.images[:16]
    plain = net.predict(x)
    quantized = qnet.predict(x)
    assert np.allclose(plain, quantized, atol=1e-6)


def test_fixed16_close_to_float(tiny_digits):
    net = make_tiny_cnn()
    qnet = core.QuantizedNetwork(net, core.get_precision("fixed16"))
    qnet.calibrate(tiny_digits.train.images[:64])
    x = tiny_digits.test.images[:16]
    plain = net.predict(x)
    quantized = qnet.predict(x)
    assert np.argmax(plain, axis=1).tolist() == np.argmax(quantized, axis=1).tolist()


def test_calibrate_initializes_trackers(qnet, tiny_digits):
    qnet.calibrate(tiny_digits.train.images[:32])
    fq_layers = [
        layer for layer in qnet.pipeline.layers
        if type(layer).__name__ == "FakeQuantLayer"
    ]
    assert all(layer.tracker.initialized for layer in fq_layers)
    assert all(not layer.training for layer in fq_layers)


def test_evaluate_returns_accuracy(qnet, tiny_digits):
    qnet.calibrate(tiny_digits.train.images[:32])
    acc = qnet.evaluate(tiny_digits.test.images[:50], tiny_digits.test.labels[:50])
    assert 0.0 <= acc <= 1.0


def test_quantized_state_snapshot(qnet):
    state = qnet.quantized_state()
    assert set(state) == {p.name for p in qnet.network.parameters()}
    # snapshot taken under quantization; shadow restored afterwards
    for param in qnet.network.weight_parameters():
        assert not np.array_equal(state[param.name], param.data) or np.allclose(
            qnet.weight_quantizer.quantize(param.data), param.data
        )


def test_bias_quantized_at_input_precision():
    net = make_tiny_cnn()
    qnet = core.QuantizedNetwork(net, core.get_precision("binary"))
    with qnet.quantized_weights():
        bias = net.layers[0].bias.data
        # binary spec quantizes biases at 16-bit fixed point, not 1 bit
        assert len(np.unique(bias)) >= 1
        weights = net.layers[0].weight.data
        assert len(np.unique(np.abs(weights))) == 1  # weights ARE binary
