"""Quantizer base class and IdentityQuantizer tests."""

import numpy as np
import pytest

from repro.core.quantizers import IdentityQuantizer, Quantizer


def test_identity_passthrough_and_dtype():
    q = IdentityQuantizer()
    x = np.array([1.234567, -9.87], dtype=np.float64)
    out = q.quantize(x)
    assert out.dtype == np.float32
    assert np.allclose(out, x, atol=1e-6)


def test_identity_bits_configurable():
    assert IdentityQuantizer().bits == 32
    assert IdentityQuantizer(bits=64).bits == 64


def test_call_alias():
    q = IdentityQuantizer()
    x = np.ones(3, dtype=np.float32)
    assert np.array_equal(q(x), q.quantize(x))


def test_quantization_error_zero_for_identity():
    q = IdentityQuantizer()
    x = np.random.default_rng(0).standard_normal(100).astype(np.float32)
    assert q.quantization_error(x) == 0.0


def test_base_class_is_abstract():
    with pytest.raises(NotImplementedError):
        Quantizer().quantize(np.zeros(1))


def test_quantization_error_positive_for_lossy():
    from repro.core.fixed_point import FixedPointQuantizer

    x = np.random.default_rng(1).standard_normal(100).astype(np.float32)
    assert FixedPointQuantizer(4).quantization_error(x) > 0.0
