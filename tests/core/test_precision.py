"""Precision registry tests."""

import pytest

from repro import core
from repro.core.precision import PAPER_PRECISIONS, PrecisionKind, PrecisionSpec
from repro.errors import ConfigurationError


def test_registry_has_papers_seven_points():
    assert len(PAPER_PRECISIONS) == 7
    keys = [spec.key for spec in PAPER_PRECISIONS]
    assert keys == [
        "float32", "fixed32", "fixed16", "fixed8", "fixed4", "pow2", "binary",
    ]


def test_labels_match_paper_style():
    assert core.get_precision("float32").label == "Floating-Point (32,32)"
    assert core.get_precision("fixed8").label == "Fixed-Point (8,8)"
    assert core.get_precision("pow2").label == "Powers of Two (6,16)"
    assert core.get_precision("binary").label == "Binary Net (1,16)"


def test_bit_widths():
    spec = core.get_precision("pow2")
    assert spec.weight_bits == 6
    assert spec.input_bits == 16
    assert not spec.is_float
    assert core.get_precision("float32").is_float


def test_unknown_precision_raises():
    with pytest.raises(ConfigurationError):
        core.get_precision("fixed12")


def test_invalid_spec_rejected():
    with pytest.raises(ConfigurationError):
        PrecisionSpec(PrecisionKind.FIXED, 0, 8, "bad")
    with pytest.raises(ConfigurationError):
        PrecisionSpec(PrecisionKind.BINARY, 2, 16, "bad")


def test_specs_are_hashable_and_frozen():
    spec = core.get_precision("fixed16")
    assert spec in {spec}
    with pytest.raises(Exception):
        spec.weight_bits = 8  # type: ignore[misc]
