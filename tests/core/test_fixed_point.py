"""Fixed-point quantizer tests, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.fixed_point import FixedPointQuantizer, integer_bits_for_range
from repro.errors import QuantizationError


def test_integer_bits_for_range():
    assert integer_bits_for_range(0.0) == 0
    assert integer_bits_for_range(0.9) == 0
    assert integer_bits_for_range(1.5) == 1
    assert integer_bits_for_range(3.9) == 2
    assert integer_bits_for_range(0.20) == -2  # sub-unit ranges gain resolution


def test_static_radix_grid():
    q = FixedPointQuantizer(4, frac_bits=1)  # values k/2, k in [-8, 7]
    x = np.array([0.24, 0.26, -5.0, 3.6], dtype=np.float32)
    out = q.quantize(x)
    assert np.allclose(out, [0.0, 0.5, -4.0, 3.5])


def test_saturation_not_wraparound():
    q = FixedPointQuantizer(8, frac_bits=0)
    out = q.quantize(np.array([1000.0, -1000.0], dtype=np.float32))
    assert out[0] == 127.0
    assert out[1] == -128.0


def test_dynamic_radix_follows_data():
    q = FixedPointQuantizer(8)
    small = q.quantize(np.array([0.1, -0.05], dtype=np.float32))
    assert np.allclose(small, [0.1, -0.05], atol=1e-3)  # fine resolution
    large = q.quantize(np.array([100.0, -50.0], dtype=np.float32))
    assert np.allclose(large, [100.0, -50.0], atol=1.0)


def test_range_hint_overrides_data_range():
    q = FixedPointQuantizer(8)
    x = np.array([0.1], dtype=np.float32)
    fine = q.quantize(x)
    coarse = q.quantize(x, range_hint=100.0)
    assert abs(fine[0] - 0.1) < abs(coarse[0] - 0.1) + 1e-9
    assert q.resolve_frac_bits(x, 100.0) < q.resolve_frac_bits(x, None)


def test_quantization_error_decreases_with_bits():
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1000).astype(np.float32)
    errors = [FixedPointQuantizer(b).quantization_error(x) for b in (4, 8, 16)]
    assert errors[0] > errors[1] > errors[2]


def test_sixteen_bits_near_lossless_on_unit_data():
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, 500).astype(np.float32)
    assert FixedPointQuantizer(16).quantization_error(x) < 1e-4


def test_integer_repr_round_trip():
    q = FixedPointQuantizer(8, frac_bits=4)
    x = np.array([0.5, -1.25, 3.0], dtype=np.float32)
    codes = q.integer_repr(x)
    assert codes.dtype == np.int64
    assert np.allclose(codes / 16.0, q.quantize(x))


def test_integer_repr_within_word_range():
    q = FixedPointQuantizer(8, frac_bits=0)
    codes = q.integer_repr(np.array([500.0, -500.0], dtype=np.float32))
    assert codes.max() <= 127 and codes.min() >= -128


def test_stochastic_rounding_unbiased():
    q = FixedPointQuantizer(
        8, frac_bits=0, stochastic_rounding=True, rng=np.random.default_rng(0)
    )
    x = np.full(20000, 0.3, dtype=np.float32)
    out = q.quantize(x)
    assert set(np.unique(out)) <= {0.0, 1.0}
    assert abs(out.mean() - 0.3) < 0.02


def test_minimum_bits_enforced():
    with pytest.raises(QuantizationError):
        FixedPointQuantizer(1)


def test_step_size():
    q = FixedPointQuantizer(8)
    assert q.step_size(0.9) == pytest.approx(2.0 ** -(7))
    assert q.step_size(100.0) > q.step_size(1.0)


def test_zero_array():
    q = FixedPointQuantizer(8)
    out = q.quantize(np.zeros(5, dtype=np.float32))
    assert np.all(out == 0.0)


@settings(max_examples=50, deadline=None)
@given(
    bits=st.integers(2, 16),
    x=hnp.arrays(np.float32, (20,), elements=st.floats(-100, 100, width=32)),
)
def test_quantize_properties(bits, x):
    q = FixedPointQuantizer(bits)
    out = q.quantize(x)
    # idempotence: quantizing a quantized array changes nothing
    assert np.allclose(q.quantize(out), out, atol=1e-7)
    # output bounded by the representable range around the data; the
    # two's-complement grid extends one extra step on the negative side
    max_abs = float(np.max(np.abs(x), initial=0.0))
    if max_abs > 0:
        step = q.step_size(max_abs)
        assert np.all(np.abs(out) <= max_abs + step + 1e-6)
        # round-to-nearest error is step/2 except at the saturated
        # positive extreme, where it can approach one full step
        assert np.max(np.abs(out - x)) <= step + 1e-6


@settings(max_examples=30, deadline=None)
@given(
    x=hnp.arrays(np.float32, (16,), elements=st.floats(-8, 8, width=32)),
)
def test_monotonicity(x):
    """Quantization preserves (non-strict) ordering."""
    q = FixedPointQuantizer(6)
    order = np.argsort(x)
    out = q.quantize(x)
    assert np.all(np.diff(out[order]) >= -1e-7)
