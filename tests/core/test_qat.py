"""Quantization-aware training tests."""

import numpy as np
import pytest

from repro import core, nn
from tests.conftest import make_tiny_cnn


def small_problem(tiny_digits, n=120):
    return (
        tiny_digits.train.images[:n],
        tiny_digits.train.labels[:n],
        tiny_digits.test.images[:60],
        tiny_digits.test.labels[:60],
    )


def trained_float_net(tiny_digits, epochs=4):
    net = make_tiny_cnn(seed=1)
    x, y, _, _ = small_problem(tiny_digits)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02), batch_size=16,
        rng=np.random.default_rng(0),
    )
    trainer.fit(x, y, epochs=epochs)
    return net


def test_qat_trainer_runs_and_learns(tiny_digits):
    net = trained_float_net(tiny_digits)
    x, y, tx, ty = small_problem(tiny_digits)
    qnet = core.QuantizedNetwork(net, core.get_precision("fixed4"))
    qnet.calibrate(x[:64])
    before = qnet.evaluate(tx, ty)
    trainer = core.QATTrainer(
        qnet, nn.SGD(net.parameters(), lr=0.01), batch_size=16,
        rng=np.random.default_rng(1),
    )
    trainer.fit(x, y, epochs=3)
    after = qnet.evaluate(tx, ty)
    assert after >= before - 0.05  # QAT must not destroy the network
    assert after > 0.5             # and the 4-bit net must actually work


def test_shadow_weights_full_precision_after_training(tiny_digits):
    net = trained_float_net(tiny_digits, epochs=1)
    x, y, _, _ = small_problem(tiny_digits, n=40)
    qnet = core.QuantizedNetwork(net, core.get_precision("binary"))
    qnet.calibrate(x[:32])
    trainer = core.QATTrainer(
        qnet, nn.SGD(net.parameters(), lr=0.01), batch_size=20,
        rng=np.random.default_rng(0),
    )
    trainer.fit(x, y, epochs=1)
    # shadow weights must NOT be binary after training
    weights = net.layers[0].weight.data
    assert len(np.unique(np.abs(weights))) > 2


def test_qat_evaluate_uses_quantized_weights(tiny_digits):
    net = trained_float_net(tiny_digits, epochs=1)
    x, y, tx, ty = small_problem(tiny_digits, n=40)
    qnet = core.QuantizedNetwork(net, core.get_precision("fixed4"))
    qnet.calibrate(x[:32])
    trainer = core.QATTrainer(
        qnet, nn.SGD(net.parameters(), lr=0.001), batch_size=20,
    )
    metrics = trainer.evaluate(tx, ty)
    assert metrics["accuracy"] == pytest.approx(qnet.evaluate(tx, ty), abs=1e-6)


def test_qat_beats_ptq_at_low_bits(tiny_digits):
    """The paper's training-time technique must beat naive post-training
    quantization at aggressive precision (here: binary weights)."""
    net = trained_float_net(tiny_digits)
    x, y, tx, ty = small_problem(tiny_digits)
    spec = core.get_precision("binary")

    ptq = core.post_training_quantize(net, spec, x[:64])
    ptq_accuracy = ptq.evaluate(tx, ty)

    qnet = core.QuantizedNetwork(net, spec)
    qnet.calibrate(x[:64])
    trainer = core.QATTrainer(
        qnet, nn.SGD(net.parameters(), lr=0.02), batch_size=16,
        rng=np.random.default_rng(2),
    )
    trainer.fit(x, y, epochs=4)
    qat_accuracy = qnet.evaluate(tx, ty)
    assert qat_accuracy >= ptq_accuracy


def test_post_training_quantize_calibrates(tiny_digits):
    net = trained_float_net(tiny_digits, epochs=1)
    qnet = core.post_training_quantize(
        net, core.get_precision("fixed8"), tiny_digits.train.images[:32]
    )
    fq_layers = [
        layer for layer in qnet.pipeline.layers
        if type(layer).__name__ == "FakeQuantLayer"
    ]
    assert all(layer.tracker.initialized for layer in fq_layers)
