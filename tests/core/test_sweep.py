"""Precision sweep orchestration tests (tiny budgets)."""

import numpy as np
import pytest

from repro import core
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.errors import ConfigurationError
from tests.conftest import make_tiny_cnn


@pytest.fixture(scope="module")
def sweep():
    split = load_dataset("digits", n_train=200, n_test=100, seed=0)
    config = SweepConfig(float_epochs=4, qat_epochs=1, float_lr=0.02, qat_lr=0.005)
    return PrecisionSweep(lambda: make_tiny_cnn(seed=5), split, config)


def test_float_baseline_trains_and_caches(sweep):
    first = sweep.train_float_baseline()
    second = sweep.train_float_baseline()
    assert first is second
    assert first.converged
    assert first.accuracy > 0.5


def test_float_precision_returns_baseline(sweep):
    result = sweep.run_precision(core.get_precision("float32"))
    assert result is sweep.train_float_baseline()


def test_low_precision_result(sweep):
    result = sweep.run_precision(core.get_precision("fixed8"))
    assert result.spec.key == "fixed8"
    assert 0.0 <= result.accuracy <= 1.0
    assert result.converged
    assert result.accuracy_percent == pytest.approx(100 * result.accuracy)


def test_full_sweep_covers_all_precisions(sweep):
    results = sweep.run(
        [core.get_precision(k) for k in ("float32", "fixed16", "binary")]
    )
    assert [r.spec.key for r in results] == ["float32", "fixed16", "binary"]


def test_chance_accuracy(sweep):
    assert sweep.chance_accuracy == pytest.approx(0.1)


def test_convergence_detection():
    """A sweep with zero QAT epochs on an untrained-ish baseline should
    flag near-chance results as non-convergent (the paper's NA rows)."""
    split = load_dataset("digits", n_train=100, n_test=100, seed=1)
    config = SweepConfig(
        float_epochs=1, qat_epochs=0, float_lr=1e-9, convergence_factor=1.8
    )
    sweep = PrecisionSweep(lambda: make_tiny_cnn(seed=6), split, config)
    result = sweep.run_precision(core.get_precision("binary"))
    assert not result.converged


def test_sweep_config_validation():
    with pytest.raises(ConfigurationError):
        SweepConfig(float_epochs=0)
    with pytest.raises(ConfigurationError):
        SweepConfig(convergence_factor=0.5)


def test_paper_config_is_larger():
    quick, paper = SweepConfig(), SweepConfig.paper()
    assert paper.float_epochs > quick.float_epochs
    assert paper.qat_epochs > quick.qat_epochs
