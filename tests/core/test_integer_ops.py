"""Integer datapath vs float quantization-emulation equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_point import FixedPointQuantizer
from repro.core.integer_ops import (
    FixedPointFormat,
    _round_half_even_rshift,
    align_bias,
    format_for_tensor,
    integer_conv2d,
    integer_dense,
)


def test_round_half_even_matches_rint():
    values = np.arange(-40, 41, dtype=np.int64)  # quarters: shift by 2
    got = _round_half_even_rshift(values, 2)
    want = np.rint(values / 4.0).astype(np.int64)
    assert np.array_equal(got, want)


def test_round_half_even_negative_shift_is_left_shift():
    values = np.array([1, -3], dtype=np.int64)
    assert np.array_equal(_round_half_even_rshift(values, -3), [8, -24])


def test_encode_decode_roundtrip():
    fmt = FixedPointFormat(8, 4)
    values = np.array([0.5, -1.25, 3.0], dtype=np.float32)
    codes = fmt.encode(values)
    assert np.allclose(fmt.decode(codes), values)


def test_encode_saturates():
    fmt = FixedPointFormat(8, 0)
    codes = fmt.encode(np.array([1000.0, -1000.0]))
    assert codes[0] == 127 and codes[1] == -128


def test_format_matches_quantizer_choice():
    rng = np.random.default_rng(0)
    values = rng.standard_normal(100).astype(np.float32) * 0.3
    fmt = format_for_tensor(values, 8)
    quantizer = FixedPointQuantizer(8)
    assert fmt.frac_bits == quantizer.resolve_frac_bits(values, None)
    # encode/decode reproduces the quantizer's grid exactly
    assert np.allclose(fmt.decode(fmt.encode(values)), quantizer.quantize(values))


def _dense_setup(bits, seed=0, n=6, d_in=16, d_out=5):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d_in)).astype(np.float32)
    w = (rng.standard_normal((d_in, d_out)) * 0.3).astype(np.float32)
    b = (rng.standard_normal(d_out) * 0.1).astype(np.float32)
    in_fmt = format_for_tensor(x, bits)
    w_fmt = format_for_tensor(w, bits)
    b_fmt = format_for_tensor(b, 16)
    return x, w, b, in_fmt, w_fmt, b_fmt


@pytest.mark.parametrize("bits", [4, 8, 16])
def test_integer_dense_matches_float64_emulation(bits):
    x, w, b, in_fmt, w_fmt, b_fmt = _dense_setup(bits)
    # float64 emulation: dequantized operands, exact arithmetic; the
    # bias is aligned to the product radix exactly as the hardware does
    product_frac = in_fmt.frac_bits + w_fmt.frac_bits
    xq = in_fmt.decode(in_fmt.encode(x))
    wq = w_fmt.decode(w_fmt.encode(w))
    bq = align_bias(b_fmt.encode(b), b_fmt.frac_bits, product_frac) / 2.0**product_frac
    reference = xq @ wq + bq
    out_fmt = FixedPointFormat(bits, in_fmt.frac_bits)
    expected = np.clip(
        np.rint(reference * out_fmt.scale), out_fmt.q_min, out_fmt.q_max
    ).astype(np.int64)

    got = integer_dense(
        in_fmt.encode(x), w_fmt.encode(w), b_fmt.encode(b),
        in_fmt, w_fmt, out_fmt, b_fmt.frac_bits,
    )
    assert np.array_equal(got, expected), "integer path must be bit-exact"


@pytest.mark.parametrize("bits,stride,padding", [(8, 1, 0), (8, 2, 1), (4, 1, 1)])
def test_integer_conv_matches_float64_emulation(bits, stride, padding):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
    w = (rng.standard_normal((4, 3, 3, 3)) * 0.2).astype(np.float32)
    b = (rng.standard_normal(4) * 0.05).astype(np.float32)
    in_fmt = format_for_tensor(x, bits)
    w_fmt = format_for_tensor(w, bits)
    b_fmt = format_for_tensor(b, 16)
    out_fmt = FixedPointFormat(bits, max(in_fmt.frac_bits - 2, 0))

    product_frac = in_fmt.frac_bits + w_fmt.frac_bits
    xq = in_fmt.decode(in_fmt.encode(x))
    wq = w_fmt.decode(w_fmt.encode(w))
    bq = align_bias(b_fmt.encode(b), b_fmt.frac_bits, product_frac) / 2.0**product_frac
    # float64 direct convolution reference
    from tests.nn.test_conv import reference_conv

    reference = reference_conv(xq, wq, bq, stride, padding)
    expected = np.clip(
        np.rint(reference * out_fmt.scale), out_fmt.q_min, out_fmt.q_max
    ).astype(np.int64)

    got = integer_conv2d(
        in_fmt.encode(x), w_fmt.encode(w), b_fmt.encode(b),
        stride, padding, in_fmt, w_fmt, out_fmt, b_fmt.frac_bits,
    )
    assert np.array_equal(got, expected)


def test_float32_production_path_agrees_within_rounding():
    """The float32 emulation in repro.nn agrees with the exact integer
    path to within float32 rounding of the accumulation."""
    from repro import nn

    bits = 8
    x, w, b, in_fmt, w_fmt, b_fmt = _dense_setup(bits, seed=2)
    dense = nn.Dense(16, 5)
    dense.weight.set_data(w_fmt.decode(w_fmt.encode(w)).astype(np.float32))
    dense.bias.set_data(b_fmt.decode(b_fmt.encode(b)).astype(np.float32))
    dense.eval_mode()
    float_out = dense.forward(in_fmt.decode(in_fmt.encode(x)).astype(np.float32))

    out_fmt = FixedPointFormat(16, in_fmt.frac_bits)
    integer_out = integer_dense(
        in_fmt.encode(x), w_fmt.encode(w), b_fmt.encode(b),
        in_fmt, w_fmt, out_fmt, b_fmt.frac_bits,
    )
    # integer output is quantized to the out grid; the float path is
    # not, so they agree to within half an output step (+ float noise)
    max_diff = float(np.abs(float_out - out_fmt.decode(integer_out)).max())
    assert max_diff <= 0.5 / out_fmt.scale + 1e-4


def test_align_bias_directions():
    codes = np.array([5, -5], dtype=np.int64)
    # coarser bias -> left shift (exact)
    assert np.array_equal(align_bias(codes, 2, 4), [20, -20])
    # finer bias -> rounded right shift (half to even)
    assert np.array_equal(align_bias(np.array([6, 10]), 4, 2), [2, 2])


@settings(max_examples=25, deadline=None)
@given(
    bits=st.integers(3, 10),
    seed=st.integers(0, 50),
)
def test_integer_dense_property_bit_exact(bits, seed):
    x, w, b, in_fmt, w_fmt, b_fmt = _dense_setup(bits, seed=seed, n=3, d_in=8, d_out=4)
    out_fmt = FixedPointFormat(bits, in_fmt.frac_bits)
    product_frac = in_fmt.frac_bits + w_fmt.frac_bits
    xq, wq = in_fmt.decode(in_fmt.encode(x)), w_fmt.decode(w_fmt.encode(w))
    bq = align_bias(b_fmt.encode(b), b_fmt.frac_bits, product_frac) / 2.0**product_frac
    expected = np.clip(
        np.rint((xq @ wq + bq) * out_fmt.scale), out_fmt.q_min, out_fmt.q_max
    ).astype(np.int64)
    got = integer_dense(
        in_fmt.encode(x), w_fmt.encode(w), b_fmt.encode(b),
        in_fmt, w_fmt, out_fmt, b_fmt.frac_bits,
    )
    assert np.array_equal(got, expected)
