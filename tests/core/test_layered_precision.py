"""Per-layer precision specs and the mixed-precision dispatch."""

import numpy as np
import pytest

from repro.core.mixed_precision import (
    MixedPrecisionNetwork,
    make_quantized_network,
)
from repro.core.precision import (
    LayeredPrecisionSpec,
    PrecisionKind,
    PrecisionSpec,
    layered_spec,
)
from repro.core.quantized import QuantizedNetwork
from repro.errors import ConfigError, ConfigurationError
from repro.hw.energy import EnergyModel
from repro.zoo import build_network, network_info


def test_parse_comma_form_builds_layered_spec():
    spec = PrecisionSpec.parse("fixed:2,4,8:8")
    assert isinstance(spec, LayeredPrecisionSpec)
    assert spec.weight_bits_per_layer == (2, 4, 8)
    assert spec.weight_bits == 8            # headline = widest layer
    assert spec.input_bits == 8
    assert spec.kind is PrecisionKind.FIXED


def test_layered_key_round_trips():
    spec = layered_spec(PrecisionKind.FIXED, [2, 4, 8], 8)
    assert spec.key == "fixed:2,4,8:8"
    again = PrecisionSpec.parse(spec.key)
    assert again == spec and again.key == spec.key


def test_layered_validation():
    with pytest.raises(ConfigurationError):
        layered_spec(PrecisionKind.FIXED, [], 8)
    with pytest.raises(ConfigurationError):
        layered_spec(PrecisionKind.FIXED, [0, 4], 8)
    with pytest.raises(ConfigurationError):
        PrecisionSpec.parse("fixed:2,x:8")


def test_per_layer_specs_are_uniform_points():
    spec = PrecisionSpec.parse("fixed:2,4,8:8")
    keys = [s.key for s in spec.per_layer_specs()]
    assert keys == ["fixed:2:8", "fixed:4:8", "fixed8"]
    assert not any(
        isinstance(s, LayeredPrecisionSpec) for s in spec.per_layer_specs()
    )


def test_make_quantized_network_dispatches_on_spec():
    network = build_network("lenet_small", seed=0)
    n_weight = len(network.weight_parameters())
    layered = layered_spec(PrecisionKind.FIXED, [4] * (n_weight - 1) + [8], 8)
    mixed = make_quantized_network(network, layered)
    assert isinstance(mixed, MixedPrecisionNetwork)
    uniform = make_quantized_network(build_network("lenet_small"), "fixed8")
    assert isinstance(uniform, QuantizedNetwork)
    assert not isinstance(uniform, MixedPrecisionNetwork)


def test_from_layered_rejects_wrong_layer_count():
    network = build_network("lenet_small", seed=0)
    bad = layered_spec(PrecisionKind.FIXED, [4, 8], 8)  # too few layers
    with pytest.raises(ConfigError, match="weight_bits_per_layer"):
        MixedPrecisionNetwork.from_layered(network, bad)


def test_layered_inference_matches_all_equal_uniform():
    network = build_network("lenet_small", seed=0)
    n_weight = len(network.weight_parameters())
    layered = layered_spec(PrecisionKind.FIXED, [8] * n_weight, 8)
    mixed = make_quantized_network(network, layered)
    uniform = QuantizedNetwork(
        build_network("lenet_small", seed=0), PrecisionSpec.parse("fixed8")
    )
    x = np.random.default_rng(0).normal(
        size=(4,) + network_info("lenet_small").input_shape
    )
    mixed.calibrate(x)
    uniform.calibrate(x)
    np.testing.assert_allclose(mixed.infer(x), uniform.infer(x))


class TestLayeredEnergy:
    def setup_method(self):
        self.model = EnergyModel()
        self.network = build_network("lenet_small", seed=0)
        self.shape = network_info("lenet_small").input_shape
        self.n_weight = len(self.network.weight_parameters())

    def evaluate(self, spec_key):
        return self.model.evaluate(
            self.network, self.shape, PrecisionSpec.parse(spec_key)
        )

    def test_all_equal_layered_matches_uniform(self):
        bits = ",".join(["8"] * self.n_weight)
        layered = self.evaluate(f"fixed:{bits}:8")
        uniform = self.evaluate("fixed8")
        assert layered.energy_uj == pytest.approx(uniform.energy_uj)
        assert layered.total_cycles == uniform.total_cycles

    def test_mixed_widths_price_between_their_extremes(self):
        bits = ["4"] * self.n_weight
        bits[-1] = "8"
        mixed = self.evaluate("fixed:" + ",".join(bits) + ":8")
        low = self.evaluate("fixed:4:8")
        high = self.evaluate("fixed8")
        assert low.energy_uj < mixed.energy_uj < high.energy_uj

    def test_layer_count_mismatch_raises_config_error(self):
        with pytest.raises(ConfigError, match="weight layers"):
            self.evaluate("fixed:4,8:8")

    def test_layered_reports_compose_per_layer(self):
        bits = ["4"] * self.n_weight
        bits[0] = "2"
        report = self.evaluate("fixed:" + ",".join(bits) + ":8")
        assert len(report.layers) == len(self.evaluate("fixed8").layers)
        assert report.energy_uj == pytest.approx(
            sum(layer.energy_uj for layer in report.layers)
        )
