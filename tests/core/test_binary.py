"""Binary quantizer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.binary import BinaryQuantizer
from repro.errors import QuantizationError


def test_unit_mode_gives_plus_minus_one():
    q = BinaryQuantizer(scale="unit")
    x = np.array([0.3, -2.0, 0.0], dtype=np.float32)
    out = q.quantize(x)
    assert np.array_equal(out, [1.0, -1.0, 1.0])


def test_mean_mode_scale():
    q = BinaryQuantizer(scale="mean")
    x = np.array([1.0, -3.0], dtype=np.float32)
    out = q.quantize(x)
    assert np.allclose(np.abs(out), 2.0)  # mean(|x|) = 2
    assert np.array_equal(np.sign(out), [1.0, -1.0])


def test_two_distinct_values_only():
    q = BinaryQuantizer()
    rng = np.random.default_rng(0)
    out = q.quantize(rng.standard_normal(500).astype(np.float32))
    assert len(np.unique(out)) <= 2


def test_zero_maps_to_positive():
    out = BinaryQuantizer(scale="unit").quantize(np.zeros(3, dtype=np.float32))
    assert np.all(out == 1.0)


def test_all_zero_array_scale_fallback():
    q = BinaryQuantizer(scale="mean")
    out = q.quantize(np.zeros(4, dtype=np.float32))
    assert np.all(np.abs(out) == 1.0)  # scale falls back to 1


def test_bit_repr():
    q = BinaryQuantizer()
    bits = q.bit_repr(np.array([0.5, -0.5, 0.0], dtype=np.float32))
    assert bits.dtype == np.uint8
    assert np.array_equal(bits, [1, 0, 1])


def test_invalid_scale_mode():
    with pytest.raises(QuantizationError):
        BinaryQuantizer(scale="l2")


def test_bits_is_one():
    assert BinaryQuantizer().bits == 1


@settings(max_examples=40, deadline=None)
@given(
    x=hnp.arrays(np.float32, (12,), elements=st.floats(-10, 10, width=32)),
)
def test_binary_properties(x):
    q = BinaryQuantizer()
    out = q.quantize(x)
    # idempotence up to scale re-derivation: |out| constant
    assert len(np.unique(np.abs(out))) == 1
    # signs follow inputs (zeros go positive)
    expected_signs = np.where(x >= 0, 1.0, -1.0)
    assert np.array_equal(np.sign(out), expected_signs)
