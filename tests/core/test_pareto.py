"""Pareto frontier tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import DesignPoint, dominated_by_frontier, dominates, pareto_frontier


def point(label, acc, energy):
    return DesignPoint(label=label, accuracy=acc, energy_uj=energy)


def test_dominates_basic():
    a = point("a", 90.0, 10.0)
    b = point("b", 80.0, 20.0)
    assert dominates(a, b)
    assert not dominates(b, a)


def test_equal_points_do_not_dominate():
    a = point("a", 90.0, 10.0)
    b = point("b", 90.0, 10.0)
    assert not dominates(a, b)
    assert not dominates(b, a)


def test_tradeoff_points_incomparable():
    cheap = point("cheap", 70.0, 5.0)
    accurate = point("accurate", 95.0, 100.0)
    assert not dominates(cheap, accurate)
    assert not dominates(accurate, cheap)


def test_frontier_extraction():
    points = [
        point("baseline", 81.0, 335.0),
        point("fixed16", 80.0, 136.0),
        point("binary", 75.0, 20.0),
        point("dominated", 74.0, 300.0),
        point("winner", 81.5, 215.0),
    ]
    frontier = pareto_frontier(points)
    labels = [p.label for p in frontier]
    assert "dominated" not in labels
    assert "baseline" not in labels  # dominated by winner
    assert labels == ["binary", "fixed16", "winner"]  # sorted by energy


def test_frontier_sorted_by_energy():
    points = [point(str(i), 70 + i, 100 - 10 * i) for i in range(5)]
    frontier = pareto_frontier(points)
    energies = [p.energy_uj for p in frontier]
    assert energies == sorted(energies)


def test_dominated_complement():
    points = [point("a", 90, 10), point("b", 80, 20)]
    assert [p.label for p in dominated_by_frontier(points)] == ["b"]


def test_empty_frontier():
    assert pareto_frontier([]) == []


@settings(max_examples=40, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.floats(0, 100), st.floats(1, 1000)),
        min_size=1, max_size=12,
    )
)
def test_frontier_properties(coords):
    points = [point(f"p{i}", acc, energy) for i, (acc, energy) in enumerate(coords)]
    frontier = pareto_frontier(points)
    # 1. non-empty whenever input is non-empty
    assert frontier
    # 2. no frontier point dominates another frontier point
    for a in frontier:
        for b in frontier:
            if a is not b:
                assert not dominates(a, b)
    # 3. every non-frontier point is dominated by some frontier point
    frontier_ids = {id(p) for p in frontier}
    for p in points:
        if id(p) not in frontier_ids:
            assert any(dominates(f, p) for f in frontier)
    # 4. the max-accuracy point is always on the frontier
    best = max(points, key=lambda p: (p.accuracy, -p.energy_uj))
    assert any(
        f.accuracy >= best.accuracy and f.energy_uj <= best.energy_uj
        for f in frontier
    )
