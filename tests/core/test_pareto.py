"""Pareto frontier tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import DesignPoint, dominated_by_frontier, dominates, pareto_frontier


def point(label, acc, energy):
    return DesignPoint(label=label, accuracy=acc, energy_uj=energy)


def test_dominates_basic():
    a = point("a", 90.0, 10.0)
    b = point("b", 80.0, 20.0)
    assert dominates(a, b)
    assert not dominates(b, a)


def test_equal_points_do_not_dominate():
    a = point("a", 90.0, 10.0)
    b = point("b", 90.0, 10.0)
    assert not dominates(a, b)
    assert not dominates(b, a)


def test_tradeoff_points_incomparable():
    cheap = point("cheap", 70.0, 5.0)
    accurate = point("accurate", 95.0, 100.0)
    assert not dominates(cheap, accurate)
    assert not dominates(accurate, cheap)


def test_frontier_extraction():
    points = [
        point("baseline", 81.0, 335.0),
        point("fixed16", 80.0, 136.0),
        point("binary", 75.0, 20.0),
        point("dominated", 74.0, 300.0),
        point("winner", 81.5, 215.0),
    ]
    frontier = pareto_frontier(points)
    labels = [p.label for p in frontier]
    assert "dominated" not in labels
    assert "baseline" not in labels  # dominated by winner
    assert labels == ["binary", "fixed16", "winner"]  # sorted by energy


def test_frontier_sorted_by_energy():
    points = [point(str(i), 70 + i, 100 - 10 * i) for i in range(5)]
    frontier = pareto_frontier(points)
    energies = [p.energy_uj for p in frontier]
    assert energies == sorted(energies)


def test_dominated_complement():
    points = [point("a", 90, 10), point("b", 80, 20)]
    assert [p.label for p in dominated_by_frontier(points)] == ["b"]


def test_empty_frontier():
    assert pareto_frontier([]) == []


@settings(max_examples=40, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.floats(0, 100), st.floats(1, 1000)),
        min_size=1, max_size=12,
    )
)
def test_frontier_properties(coords):
    points = [point(f"p{i}", acc, energy) for i, (acc, energy) in enumerate(coords)]
    frontier = pareto_frontier(points)
    # 1. non-empty whenever input is non-empty
    assert frontier
    # 2. no frontier point dominates another frontier point
    for a in frontier:
        for b in frontier:
            if a is not b:
                assert not dominates(a, b)
    # 3. every non-frontier point is dominated by some frontier point
    frontier_ids = {id(p) for p in frontier}
    for p in points:
        if id(p) not in frontier_ids:
            assert any(dominates(f, p) for f in frontier)
    # 4. the max-accuracy point is always on the frontier
    best = max(points, key=lambda p: (p.accuracy, -p.energy_uj))
    assert any(
        f.accuracy >= best.accuracy and f.energy_uj <= best.energy_uj
        for f in frontier
    )


# -- NaN hardening (typed ConfigError instead of silent propagation) ----

def test_nan_accuracy_is_rejected_with_typed_error():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError) as excinfo:
        point("bad", float("nan"), 10.0)
    assert excinfo.value.field == "accuracy"
    assert "bad" in str(excinfo.value)


def test_nan_energy_is_rejected_with_typed_error():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError) as excinfo:
        point("bad", 90.0, float("nan"))
    assert excinfo.value.field == "energy_uj"


def test_config_error_is_a_configuration_error():
    from repro.errors import ConfigError, ConfigurationError

    with pytest.raises(ConfigurationError):
        point("bad", float("nan"), 10.0)
    assert issubclass(ConfigError, ConfigurationError)


# -- sort-based frontier vs the quadratic oracle ------------------------

@settings(max_examples=80, deadline=None)
@given(
    coords=st.lists(
        st.tuples(
            st.sampled_from([70.0, 75.0, 80.0, 90.0]),
            st.sampled_from([1.0, 2.0, 5.0, 10.0]),
        ),
        min_size=1, max_size=16,
    )
)
def test_frontier_matches_bruteforce_oracle_on_duplicates(coords):
    """Coordinates drawn from a tiny grid force heavy duplication —
    the regime where a sort-based sweep most easily diverges from the
    quadratic definition (ties on one or both axes)."""
    from repro.core.pareto import pareto_frontier_bruteforce

    points = [point(f"p{i}", acc, e) for i, (acc, e) in enumerate(coords)]
    fast = pareto_frontier(points)
    oracle = pareto_frontier_bruteforce(points)
    assert [p.label for p in fast] == [p.label for p in oracle]


@settings(max_examples=60, deadline=None)
@given(
    coords=st.lists(
        st.tuples(st.floats(0, 100), st.floats(1, 1000)),
        min_size=1, max_size=14,
    )
)
def test_frontier_matches_bruteforce_oracle_on_floats(coords):
    from repro.core.pareto import pareto_frontier_bruteforce

    points = [point(f"p{i}", acc, e) for i, (acc, e) in enumerate(coords)]
    assert [p.label for p in pareto_frontier(points)] == [
        p.label for p in pareto_frontier_bruteforce(points)
    ]


def test_duplicate_points_all_kept_on_frontier():
    points = [point("a", 90.0, 10.0), point("b", 90.0, 10.0),
              point("worse", 80.0, 20.0)]
    assert [p.label for p in pareto_frontier(points)] == ["a", "b"]
