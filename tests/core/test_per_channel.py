"""Per-channel and unsigned quantizer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fixed_point import FixedPointQuantizer
from repro.core.per_channel import (
    PerChannelFixedPointQuantizer,
    UnsignedFixedPointQuantizer,
)
from repro.errors import QuantizationError


def test_per_channel_beats_per_tensor_on_disparate_channels():
    """Channels with very different magnitudes: one shared radix wastes
    resolution on the small channel; per-channel does not."""
    rng = np.random.default_rng(0)
    big = rng.uniform(-8.0, 8.0, size=(1, 4, 3, 3))
    small = rng.uniform(-0.05, 0.05, size=(1, 4, 3, 3))
    weights = np.concatenate([big, small], axis=0).astype(np.float32)

    per_tensor = FixedPointQuantizer(6)
    per_channel = PerChannelFixedPointQuantizer(6)
    err_tensor = per_tensor.quantization_error(weights)
    err_channel = per_channel.quantization_error(weights)
    assert err_channel < err_tensor
    # the small channel must survive per-channel quantization
    q = per_channel.quantize(weights)
    assert np.any(q[1] != 0.0)


def test_per_channel_matches_per_tensor_on_uniform_channels():
    rng = np.random.default_rng(1)
    weights = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
    # force identical per-channel ranges
    weights[0] = weights[1] = weights[2]
    per_tensor = FixedPointQuantizer(8)
    per_channel = PerChannelFixedPointQuantizer(8)
    assert np.allclose(per_channel.quantize(weights), per_tensor.quantize(weights))


def test_per_channel_dense_axis():
    rng = np.random.default_rng(2)
    weights = rng.standard_normal((6, 4)).astype(np.float32)
    weights[:, 0] *= 100.0
    quantizer = PerChannelFixedPointQuantizer(6, channel_axis=1)
    fracs = quantizer.frac_bits_per_channel(weights)
    assert fracs.shape == (4,)
    assert fracs[0] < fracs[1]  # the big column gets fewer frac bits


def test_per_channel_1d_falls_back_to_scalar():
    quantizer = PerChannelFixedPointQuantizer(8)
    x = np.array([0.5, -0.25], dtype=np.float32)
    assert np.allclose(quantizer.quantize(x), FixedPointQuantizer(8).quantize(x))


def test_per_channel_validation():
    with pytest.raises(QuantizationError):
        PerChannelFixedPointQuantizer(1)


def test_unsigned_rejects_negatives():
    with pytest.raises(QuantizationError):
        UnsignedFixedPointQuantizer(8).quantize(np.array([-0.1], dtype=np.float32))


def test_unsigned_doubles_resolution_vs_signed():
    rng = np.random.default_rng(3)
    x = rng.uniform(0.0, 1.0, 1000).astype(np.float32)
    signed_err = FixedPointQuantizer(8).quantization_error(x)
    unsigned_err = UnsignedFixedPointQuantizer(8).quantization_error(x)
    assert unsigned_err < signed_err
    assert unsigned_err == pytest.approx(signed_err / 2, rel=0.2)


def test_unsigned_range_hint():
    q = UnsignedFixedPointQuantizer(8)
    x = np.array([0.5], dtype=np.float32)
    fine = q.quantize(x)
    coarse = q.quantize(x, range_hint=100.0)
    assert abs(fine[0] - 0.5) <= abs(coarse[0] - 0.5)


@settings(max_examples=25, deadline=None)
@given(
    bits=st.integers(2, 12),
    scale=st.floats(0.01, 100.0),
)
def test_unsigned_properties(bits, scale):
    rng = np.random.default_rng(0)
    x = (rng.uniform(0, 1, 50) * scale).astype(np.float32)
    q = UnsignedFixedPointQuantizer(bits)
    out = q.quantize(x)
    assert np.all(out >= 0)
    assert np.allclose(q.quantize(out), out, atol=1e-7)  # idempotent
    max_value = float(x.max())
    step = 2.0 ** -q.frac_bits_for(max_value)
    assert np.max(np.abs(out - x)) <= step + 1e-6
