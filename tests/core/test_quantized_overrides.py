"""QuantizedNetwork quantizer-override hooks (used by the ablations)."""

import numpy as np

from repro import core
from repro.core.fixed_point import FixedPointQuantizer
from tests.conftest import make_micro_net


def test_weight_quantizer_override():
    net = make_micro_net()
    fixed_radix = FixedPointQuantizer(8, frac_bits=6)
    qnet = core.QuantizedNetwork(
        net, core.get_precision("fixed8"), weight_quantizer=fixed_radix
    )
    assert qnet.weight_quantizer is fixed_radix
    with qnet.quantized_weights():
        for param in net.weight_parameters():
            # every value sits on the fixed Q1.6 grid
            scaled = param.data * 64.0
            assert np.allclose(scaled, np.round(scaled), atol=1e-5)


def test_activation_factory_override():
    net = make_micro_net()
    created = []

    def factory():
        quantizer = FixedPointQuantizer(4)
        created.append(quantizer)
        return quantizer

    qnet = core.QuantizedNetwork(
        net, core.get_precision("fixed8"), activation_factory=factory
    )
    # one quantizer per insertion point, all from the custom factory
    fq_layers = [
        layer for layer in qnet.pipeline.layers
        if type(layer).__name__ == "FakeQuantLayer"
    ]
    assert len(created) == len(fq_layers)
    assert all(layer.quantizer in created for layer in fq_layers)


def test_default_used_when_not_overridden():
    net = make_micro_net()
    qnet = core.QuantizedNetwork(net, core.get_precision("pow2"))
    assert isinstance(qnet.weight_quantizer, core.PowerOfTwoQuantizer)


def test_per_channel_override_integrates():
    from repro.core.per_channel import PerChannelFixedPointQuantizer

    net = make_micro_net()
    qnet = core.QuantizedNetwork(
        net,
        core.get_precision("fixed4"),
        weight_quantizer=PerChannelFixedPointQuantizer(4),
    )
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 1, 6, 6)).astype(np.float32)
    qnet.calibrate(x)
    logits = qnet.predict(x)
    assert np.all(np.isfinite(logits))
