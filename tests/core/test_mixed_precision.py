"""Mixed-precision extension tests."""

import numpy as np
import pytest

from repro import core, nn
from repro.core.mixed_precision import (
    MixedPrecisionNetwork,
    assignment_weight_kb,
    greedy_bit_allocation,
)
from repro.errors import ConfigurationError
from tests.conftest import make_tiny_cnn


@pytest.fixture(scope="module")
def trained_setup():
    from repro.data import load_dataset

    split = load_dataset("digits", n_train=300, n_test=150, seed=0)
    net = make_tiny_cnn(seed=2)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=3)
    return split, net


def uniform_assignment(net, key):
    spec = core.get_precision(key)
    return {p.name: spec for p in net.weight_parameters()}


def test_requires_complete_assignment(trained_setup):
    _, net = trained_setup
    partial = uniform_assignment(net, "fixed8")
    partial.pop(net.weight_parameters()[0].name)
    with pytest.raises(ConfigurationError):
        MixedPrecisionNetwork(net, partial)


def test_rejects_unknown_tensor_names(trained_setup):
    _, net = trained_setup
    assignment = uniform_assignment(net, "fixed8")
    assignment["ghost.weight"] = core.get_precision("fixed8")
    with pytest.raises(ConfigurationError):
        MixedPrecisionNetwork(net, assignment)


def test_uniform_mixed_matches_uniform_quantized(trained_setup):
    """A uniform assignment must behave like the plain wrapper."""
    split, net = trained_setup
    spec = core.get_precision("fixed8")
    plain = core.QuantizedNetwork(
        net, core.PrecisionSpec(spec.kind, 8, 16, "fixed8_16")
    )
    mixed = MixedPrecisionNetwork(net, uniform_assignment(net, "fixed8"),
                                  input_bits=16)
    x = split.test.images[:32]
    plain.calibrate(x)
    mixed.calibrate(x)
    assert np.allclose(plain.predict(x), mixed.predict(x), atol=1e-5)


def test_per_layer_quantizers_differ(trained_setup):
    _, net = trained_setup
    names = [p.name for p in net.weight_parameters()]
    assignment = uniform_assignment(net, "fixed16")
    assignment[names[0]] = core.get_precision("binary")
    mixed = MixedPrecisionNetwork(net, assignment)
    with mixed.quantized_weights():
        first = net.weight_parameters()[0].data
        assert len(np.unique(np.abs(first))) == 1  # binary
        second = net.weight_parameters()[1].data
        assert len(np.unique(np.abs(second))) > 2  # 16-bit


def test_describe_lists_every_tensor(trained_setup):
    _, net = trained_setup
    mixed = MixedPrecisionNetwork(net, uniform_assignment(net, "fixed8"))
    text = mixed.describe()
    for param in net.weight_parameters():
        assert param.name in text


def test_assignment_weight_kb_monotone(trained_setup):
    _, net = trained_setup
    wide = assignment_weight_kb(net, uniform_assignment(net, "fixed16"))
    narrow = assignment_weight_kb(net, uniform_assignment(net, "fixed4"))
    assert wide > narrow
    # halving all weights roughly halves memory (biases perturb slightly)
    assert wide / narrow == pytest.approx(4.0, rel=0.05)


def test_greedy_allocation_respects_budget(trained_setup):
    split, net = trained_setup
    baseline = nn.accuracy(net.predict(split.test.images), split.test.labels)
    assignment, trace = greedy_bit_allocation(
        net,
        split.test.images[:100],
        split.test.labels[:100],
        candidates=[core.get_precision("fixed16"), core.get_precision("fixed8")],
        max_accuracy_drop=0.05,
        calibration_images=split.train.images[:64],
    )
    assert set(assignment) == {p.name for p in net.weight_parameters()}
    # the final evaluated accuracy stays within the budget
    assert trace[-1]["accuracy"] >= baseline - 0.05 - 1e-9
    # memory never increases along the trace
    kbs = [step["weight_kb"] for step in trace]
    assert kbs == sorted(kbs, reverse=True)


def test_greedy_allocation_lowers_at_least_one_layer(trained_setup):
    """On the easy digits task, 8 bits is safe, so the search must find
    narrowing opportunities."""
    split, net = trained_setup
    assignment, trace = greedy_bit_allocation(
        net,
        split.test.images[:100],
        split.test.labels[:100],
        candidates=[core.get_precision("fixed16"), core.get_precision("fixed8")],
        max_accuracy_drop=0.10,
        calibration_images=split.train.images[:64],
    )
    narrowed = [n for n, spec in assignment.items() if spec.weight_bits == 8]
    assert narrowed, "expected the greedy search to narrow some layer"
    assert len(trace) >= 2
