"""FakeQuantLayer (straight-through estimator) tests."""

import numpy as np

from repro.core.fake_quant import FakeQuantLayer
from repro.core.fixed_point import FixedPointQuantizer
from repro.core.quantizers import IdentityQuantizer


def test_forward_quantizes():
    layer = FakeQuantLayer(FixedPointQuantizer(4))
    x = np.linspace(-1, 1, 17).astype(np.float32)  # off-grid values
    out = layer.forward(x)
    assert not np.allclose(out, x)          # 4 bits is lossy
    assert len(np.unique(out)) <= 16


def test_backward_is_identity():
    layer = FakeQuantLayer(FixedPointQuantizer(4))
    layer.forward(np.ones(4, dtype=np.float32))
    grad = np.array([1.0, -2.0, 3.0, 0.5], dtype=np.float32)
    assert np.array_equal(layer.backward(grad), grad)


def test_tracker_updates_only_in_training():
    layer = FakeQuantLayer(FixedPointQuantizer(8))
    layer.train_mode()
    layer.forward(np.array([2.0], dtype=np.float32))
    trained_range = layer.tracker.max_abs
    assert trained_range == 2.0
    layer.eval_mode()
    layer.forward(np.array([100.0], dtype=np.float32))
    assert layer.tracker.max_abs == trained_range


def test_eval_uses_frozen_range():
    layer = FakeQuantLayer(FixedPointQuantizer(8))
    layer.train_mode()
    layer.forward(np.array([1.0], dtype=np.float32))
    layer.eval_mode()
    # values beyond the calibrated range must saturate
    out = layer.forward(np.array([100.0], dtype=np.float32))
    assert out[0] < 2.0


def test_identity_quantizer_passthrough():
    layer = FakeQuantLayer(IdentityQuantizer())
    x = np.array([0.123456], dtype=np.float32)
    assert np.array_equal(layer.forward(x), x)


def test_output_shape_passthrough():
    layer = FakeQuantLayer(IdentityQuantizer())
    assert layer.output_shape((3, 8, 8)) == (3, 8, 8)
