"""PrecisionSpec.parse and the unified make_quantizers factory."""

import pytest

from repro import core
from repro.core.precision import PrecisionKind, get_precision
from repro.errors import ConfigurationError


# ----------------------------------------------------------------------
# PrecisionSpec.parse
# ----------------------------------------------------------------------
def test_parse_registry_keys_are_canonical():
    for spec in core.PAPER_PRECISIONS:
        assert core.PrecisionSpec.parse(spec.key) is spec


def test_parse_spec_passthrough():
    spec = get_precision("fixed8")
    assert core.PrecisionSpec.parse(spec) is spec


def test_parse_explicit_widths_canonicalize_to_registry():
    assert core.PrecisionSpec.parse("fixed:8:8") is get_precision("fixed8")
    assert core.PrecisionSpec.parse("fixed:16:16") is get_precision("fixed16")
    assert core.PrecisionSpec.parse("pow2:6:16") is get_precision("pow2")
    assert core.PrecisionSpec.parse("binary:1:16") is get_precision("binary")
    assert core.PrecisionSpec.parse("float:32") is get_precision("float32")


def test_parse_single_width_means_square():
    spec = core.PrecisionSpec.parse("fixed:12")
    assert (spec.weight_bits, spec.input_bits) == (12, 12)
    # binary weights are 1 bit by definition; the width names the inputs
    spec = core.PrecisionSpec.parse("binary:8")
    assert (spec.weight_bits, spec.input_bits) == (1, 8)


def test_parse_compact_novel_widths():
    spec = core.PrecisionSpec.parse("fixed12")
    assert spec.kind is PrecisionKind.FIXED
    assert (spec.weight_bits, spec.input_bits) == (12, 12)
    assert spec.key == "fixed:12:12"


def test_parse_synthesized_key_round_trips():
    spec = core.PrecisionSpec.parse("fixed:4:8")
    assert spec.key == "fixed:4:8"
    again = core.PrecisionSpec.parse(spec.key)
    assert (again.kind, again.weight_bits, again.input_bits) == (
        spec.kind, spec.weight_bits, spec.input_bits)


def test_parse_is_case_insensitive():
    assert core.PrecisionSpec.parse("FIXED8") is get_precision("fixed8")
    assert core.PrecisionSpec.parse(" Fixed:8:8 ") is get_precision("fixed8")


@pytest.mark.parametrize("bad", [
    "", "fixed", "resnet", "fixed:a:b", "fixed:8:8:8", "kind:8", "fixed:0",
])
def test_parse_rejects_garbage(bad):
    with pytest.raises(ConfigurationError):
        core.PrecisionSpec.parse(bad)


# ----------------------------------------------------------------------
# make_quantizers
# ----------------------------------------------------------------------
def test_make_quantizers_float():
    weight, factory = core.make_quantizers("float32")
    assert isinstance(weight, core.IdentityQuantizer)
    assert isinstance(factory(), core.IdentityQuantizer)


def test_make_quantizers_fixed_widths():
    weight, factory = core.make_quantizers("fixed:4:8")
    assert isinstance(weight, core.FixedPointQuantizer)
    assert weight.bits == 4
    activation = factory()
    assert isinstance(activation, core.FixedPointQuantizer)
    assert activation.bits == 8


def test_make_quantizers_pow2_and_binary():
    weight, factory = core.make_quantizers("pow2")
    assert isinstance(weight, core.PowerOfTwoQuantizer)
    assert isinstance(factory(), core.FixedPointQuantizer)
    weight, factory = core.make_quantizers("binary")
    assert isinstance(weight, core.BinaryQuantizer)
    assert isinstance(factory(), core.FixedPointQuantizer)


def test_activation_factory_returns_fresh_instances():
    _, factory = core.make_quantizers("fixed8")
    assert factory() is not factory()  # independent range state per layer


def test_make_quantizers_accepts_spec_objects():
    spec = get_precision("fixed16")
    weight, _ = core.make_quantizers(spec)
    assert weight.bits == 16
