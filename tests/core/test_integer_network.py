"""Full-network integer inference vs the float quantization emulation."""

import numpy as np
import pytest

from repro import core, nn
from repro.core.integer_network import IntegerInference, _round_half_even_div
from repro.data import load_dataset
from repro.errors import QuantizationError
from repro.zoo import build_network
from tests.conftest import make_tiny_cnn


def calibrated_qnet(net, images, key="fixed8"):
    qnet = core.QuantizedNetwork(net, core.get_precision(key))
    qnet.calibrate(images)
    return qnet


@pytest.fixture(scope="module")
def digits():
    return load_dataset("digits", n_train=200, n_test=100, seed=0)


@pytest.fixture(scope="module")
def trained(digits):
    net = make_tiny_cnn(seed=3)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    trainer.fit(digits.train.images, digits.train.labels, epochs=3)
    return net


def test_round_half_even_div():
    values = np.arange(-30, 31, dtype=np.int64)
    got = _round_half_even_div(values, 6)
    want = np.rint(values / 6.0).astype(np.int64)
    assert np.array_equal(got, want)


def test_requires_fixed_point_spec(trained, digits):
    qnet = core.QuantizedNetwork(trained, core.get_precision("binary"))
    qnet.calibrate(digits.train.images[:32])
    with pytest.raises(QuantizationError):
        IntegerInference(qnet)


def test_requires_calibration(trained):
    qnet = core.QuantizedNetwork(trained, core.get_precision("fixed8"))
    with pytest.raises(QuantizationError):
        IntegerInference(qnet)


@pytest.mark.parametrize("key", ["fixed8", "fixed16"])
def test_predictions_match_float_emulation(trained, digits, key):
    """The integer pipeline must agree with the float emulation to
    within one LSB of each output (float32 accumulation noise)."""
    qnet = calibrated_qnet(trained, digits.train.images[:64], key)
    x = digits.test.images[:32]
    float_logits = qnet.predict(x)
    integer = IntegerInference(qnet)
    integer_logits = integer.predict(x)
    assert integer_logits.shape == float_logits.shape
    # agreement of argmax on (almost) every sample
    agree = np.mean(
        float_logits.argmax(axis=1) == integer_logits.argmax(axis=1)
    )
    assert agree >= 0.95
    # values agree within a couple of output quantization steps
    scale = np.abs(float_logits).max() + 1e-6
    assert np.max(np.abs(float_logits - integer_logits)) / scale < 0.1


def test_accuracy_survives_integer_deployment(trained, digits):
    """The headline deployment check: emulated accuracy ~= integer
    accuracy (this is what running on the real accelerator would do)."""
    qnet = calibrated_qnet(trained, digits.train.images[:64], "fixed8")
    emulated = qnet.evaluate(digits.test.images, digits.test.labels)
    integer = IntegerInference(qnet).evaluate(
        digits.test.images, digits.test.labels
    )
    assert abs(emulated - integer) <= 0.03


def test_avgpool_network_runs_integer():
    """ALEX-style avg pooling works through the divisor-folding path."""
    rng = np.random.default_rng(0)
    gen = np.random.default_rng(1)
    net = nn.Sequential([
        nn.Conv2D(1, 4, 3, padding=1, name="c1", rng=gen),
        nn.ReLU(name="r1"),
        nn.AvgPool2D(3, stride=2, name="p1"),
        nn.Flatten(name="f"),
        nn.Dense(4 * 4 * 4, 5, name="d1", rng=gen),
    ])
    x = rng.standard_normal((8, 1, 8, 8)).astype(np.float32)
    qnet = calibrated_qnet(net, x, "fixed8")
    integer = IntegerInference(qnet)
    float_logits = qnet.predict(x)
    integer_logits = integer.predict(x)
    assert np.all(np.isfinite(integer_logits))
    agree = np.mean(float_logits.argmax(axis=1) == integer_logits.argmax(axis=1))
    assert agree >= 0.85


def test_lenet_small_integer_deployment(digits):
    """End to end on a zoo architecture."""
    net = build_network("lenet_small", seed=0)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    trainer.fit(digits.train.images, digits.train.labels, epochs=3)
    qnet = calibrated_qnet(net, digits.train.images[:64], "fixed8")
    integer = IntegerInference(qnet)
    emulated = qnet.evaluate(digits.test.images, digits.test.labels)
    accuracy = integer.evaluate(digits.test.images, digits.test.labels)
    assert accuracy == pytest.approx(emulated, abs=0.02), (
        "integer deployment must match the emulation"
    )
    assert accuracy > 0.5
