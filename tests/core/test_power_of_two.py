"""Power-of-two quantizer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.power_of_two import PowerOfTwoQuantizer
from repro.errors import QuantizationError


def is_power_of_two(value: float) -> bool:
    if value == 0:
        return True
    mantissa, _ = np.frexp(abs(value))
    return mantissa == 0.5


def test_values_are_signed_powers_of_two():
    q = PowerOfTwoQuantizer(6)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(200).astype(np.float32)
    out = q.quantize(x)
    assert all(is_power_of_two(float(v)) for v in out)


def test_signs_preserved():
    q = PowerOfTwoQuantizer(6)
    x = np.array([0.3, -0.3, 1.7, -1.7], dtype=np.float32)
    out = q.quantize(x)
    assert np.all(np.sign(out) == np.sign(x))


def test_exact_powers_unchanged():
    q = PowerOfTwoQuantizer(6)
    x = np.array([1.0, 0.5, -0.25, 2.0], dtype=np.float32)
    assert np.allclose(q.quantize(x), x)


def test_rounds_to_nearest_exponent():
    q = PowerOfTwoQuantizer(6)
    # 0.7 -> exponent log2(0.7) = -0.51 -> rounds to -1 -> 0.5
    out = q.quantize(np.array([0.7], dtype=np.float32), range_hint=1.0)
    assert out[0] == pytest.approx(0.5)
    # 0.8 -> log2 = -0.32 -> rounds to 0 -> 1.0
    out = q.quantize(np.array([0.8], dtype=np.float32), range_hint=1.0)
    assert out[0] == pytest.approx(1.0)


def test_tiny_values_flush_to_zero():
    q = PowerOfTwoQuantizer(4)  # only 7 exponent levels
    x = np.array([1.0, 1e-6], dtype=np.float32)
    out = q.quantize(x)
    assert out[0] == 1.0
    assert out[1] == 0.0


def test_six_bits_keeps_wide_exponent_window():
    q = PowerOfTwoQuantizer(6)
    e_min, e_max = q.exponent_window(1.0)
    assert e_max == 0
    assert e_max - e_min == 30  # 31 levels


def test_zero_input_all_zero():
    q = PowerOfTwoQuantizer(6)
    assert np.all(q.quantize(np.zeros(4, dtype=np.float32)) == 0.0)


def test_exponent_repr_codes():
    q = PowerOfTwoQuantizer(6)
    x = np.array([1.0, -1.0, 0.0, 0.5], dtype=np.float32)
    codes = q.exponent_repr(x, range_hint=1.0)
    assert codes[2] == 0                     # zero code
    assert codes[0] == -codes[1]             # sign symmetry
    assert abs(codes[0]) <= 2 ** 5 - 1       # fits in 5 exponent bits


def test_minimum_bits_enforced():
    with pytest.raises(QuantizationError):
        PowerOfTwoQuantizer(1)


@settings(max_examples=40, deadline=None)
@given(
    x=hnp.arrays(np.float32, (24,), elements=st.floats(-64, 64, width=32)),
)
def test_pow2_properties(x):
    q = PowerOfTwoQuantizer(6)
    out = q.quantize(x)
    # idempotent
    assert np.allclose(q.quantize(out), out)
    # relative error of nonzero outputs bounded by sqrt(2) rounding
    nonzero = out != 0
    if np.any(nonzero):
        ratio = np.abs(out[nonzero] / x[nonzero])
        assert np.all(ratio <= np.sqrt(2) + 1e-4)
        assert np.all(ratio >= 1 / np.sqrt(2) - 1e-4)
