"""Quantization analysis tests."""

import numpy as np
import pytest

from repro import core, nn
from tests.conftest import make_tiny_cnn


@pytest.fixture(scope="module")
def trained(tiny_digits_module):
    split, net = tiny_digits_module
    return split, net


@pytest.fixture(scope="module")
def tiny_digits_module():
    from repro.data import load_dataset

    split = load_dataset("digits", n_train=300, n_test=120, seed=0)
    net = make_tiny_cnn(seed=1)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=3)
    return split, net


def test_quantization_report_covers_all_weights(trained):
    _, net = trained
    report = core.quantization_report(net, core.get_precision("fixed8"))
    assert [s.name for s in report] == [p.name for p in net.weight_parameters()]
    for stats in report:
        assert stats.rms_error >= 0
        assert 0.0 <= stats.zero_fraction <= 1.0
        assert stats.max_abs > 0


def test_sqnr_improves_with_bits(trained):
    _, net = trained
    sqnr4 = core.quantization_report(net, core.get_precision("fixed4"))
    sqnr16 = core.quantization_report(net, core.get_precision("fixed16"))
    for low, high in zip(sqnr4, sqnr16):
        assert high.sqnr_db > low.sqnr_db


def test_float_report_is_lossless(trained):
    _, net = trained
    for stats in core.quantization_report(net, core.get_precision("float32")):
        assert stats.rms_error == 0.0
        assert stats.sqnr_db == float("inf")


def test_layerwise_sensitivity_keys_and_restoration(trained):
    split, net = trained
    before = [p.data.copy() for p in net.parameters()]
    drops = core.layerwise_sensitivity(
        net, core.get_precision("binary"),
        split.test.images[:80], split.test.labels[:80],
    )
    assert set(drops) == {p.name for p in net.weight_parameters()}
    # weights must be restored exactly after the probe
    for param, original in zip(net.parameters(), before):
        assert np.array_equal(param.data, original)


def test_sensitivity_near_zero_at_high_precision(trained):
    split, net = trained
    drops = core.layerwise_sensitivity(
        net, core.get_precision("fixed16"),
        split.test.images[:80], split.test.labels[:80],
    )
    assert all(abs(drop) < 0.05 for drop in drops.values())


def test_most_sensitive_layer_returns_weight_name(trained):
    split, net = trained
    name = core.most_sensitive_layer(
        net, core.get_precision("binary"),
        split.test.images[:80], split.test.labels[:80],
    )
    assert name in {p.name for p in net.weight_parameters()}


def test_predicted_risk_ranking_orders_by_sqnr(trained):
    _, net = trained
    ranking = core.predicted_risk_ranking(net, core.get_precision("fixed4"))
    report = {s.name: s.sqnr_db for s in
              core.quantization_report(net, core.get_precision("fixed4"))}
    sqnrs = [report[name] for name in ranking]
    assert sqnrs == sorted(sqnrs)
