"""Concurrent inference on a shared QuantizedNetwork.

The weight-swap context manager mutates the Parameters shared with the
float network, so it is inherently single-threaded; the serving path
relies on :meth:`QuantizedNetwork.freeze` baking quantized copies in so
concurrent forwards never mutate shared state.  These tests pin both
halves of that contract.
"""

import threading

import numpy as np
import pytest

from repro import core
from repro.data import load_dataset
from repro.errors import ConfigurationError
from tests.conftest import make_tiny_cnn

N_THREADS = 4


@pytest.fixture(scope="module")
def digits():
    return load_dataset("digits", n_train=64, n_test=32, seed=0)


def _calibrated_qnet(digits):
    network = make_tiny_cnn(seed=3)
    qnet = core.QuantizedNetwork(network, core.get_precision("fixed8"))
    qnet.calibrate(digits.train.images)
    return qnet


def test_four_threads_match_single_threaded_outputs(digits):
    qnet = _calibrated_qnet(digits)
    images = digits.test.images
    frozen = qnet.freeze()
    expected = frozen.predict(images)

    results = [None] * N_THREADS
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(slot):
        try:
            barrier.wait()  # maximize overlap
            results[slot] = frozen.predict(images, batch_size=8)
        except Exception as error:  # pragma: no cover - failure detail
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not errors
    for slot in range(N_THREADS):
        np.testing.assert_array_equal(results[slot], expected)


def test_flatten_does_not_cache_shape_in_eval_mode(digits):
    """Regression: ``Flatten.forward`` used to write ``_cache_shape`` even
    in eval mode, so concurrent frozen-network forwards with different
    batch sizes raced on it — violating freeze()'s lock-free contract."""
    from repro.nn.dense import Flatten

    qnet = _calibrated_qnet(digits)
    frozen = qnet.freeze(backend="reference")
    flattens = [
        layer for layer in qnet.pipeline.layers if isinstance(layer, Flatten)
    ]
    assert flattens, "tiny CNN pipeline should contain a Flatten"
    for layer in flattens:
        layer._cache_shape = None

    images = digits.test.images
    expected = [
        frozen.predict(images[: 4 + slot], batch_size=2 + slot)
        for slot in range(N_THREADS)
    ]
    results = [None] * N_THREADS
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(slot):
        try:
            barrier.wait()
            # distinct batch shapes per thread make any cached-shape
            # cross-talk deterministic instead of a silent race
            results[slot] = frozen.predict(images[: 4 + slot], batch_size=2 + slot)
        except Exception as error:  # pragma: no cover - failure detail
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not errors
    for slot in range(N_THREADS):
        np.testing.assert_array_equal(results[slot], expected[slot])
    for layer in flattens:
        assert layer._cache_shape is None, "eval-mode forward wrote the cache"


def test_concurrent_weight_swap_is_rejected(digits):
    qnet = _calibrated_qnet(digits)
    with qnet.quantized_weights():
        # a second swap (any thread) must fail loudly, not corrupt weights
        with pytest.raises(ConfigurationError):
            qnet._swap_in_quantized()


def test_freeze_blocks_swaps_and_thaw_restores(digits):
    qnet = _calibrated_qnet(digits)
    original = {
        param.name: param.data.copy() for param in qnet.network.parameters()
    }
    frozen = qnet.freeze()
    # while frozen, the swap slot is occupied
    with pytest.raises(ConfigurationError):
        qnet._swap_in_quantized()
    # quantized values are actually installed
    weights = qnet.network.weight_parameters()[0]
    quantizer = qnet.weight_quantizer_for(weights)
    np.testing.assert_array_equal(
        weights.data, quantizer.quantize(original[weights.name])
    )
    frozen.thaw()
    for param in qnet.network.parameters():
        np.testing.assert_array_equal(param.data, original[param.name])
    with pytest.raises(ConfigurationError):
        frozen.forward(digits.test.images[:1])  # thawed view is dead


def test_frozen_network_through_server_matches(digits):
    """End-to-end: 4 engine workers share one cached servable."""
    from repro import serve

    store = serve.ModelStore(calibration_data={"digits": digits.train.images})
    servable = store.warm("lenet_small", "fixed8")
    images = digits.test.images
    expected = servable.frozen.predict(images)
    with serve.InferenceServer(store, workers=N_THREADS, max_batch_size=4) as server:
        futures = [
            server.submit(images[i], "lenet_small", "fixed8")
            for i in range(images.shape[0])
        ]
        for index, future in enumerate(futures):
            # tolerance: BLAS accumulation order varies with batch size
            np.testing.assert_allclose(
                future.result(timeout=60.0).logits,
                expected[index],
                rtol=0,
                atol=1e-5,
            )
