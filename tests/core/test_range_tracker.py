"""RangeTracker tests."""

import numpy as np
import pytest

from repro.core.range_tracker import RangeTracker
from repro.errors import ConfigurationError


def test_starts_uninitialized():
    tracker = RangeTracker()
    assert not tracker.initialized
    assert tracker.max_abs == 0.0


def test_first_observation_sets_value():
    tracker = RangeTracker(momentum=0.9)
    tracker.observe(np.array([1.0, -3.0]))
    assert tracker.initialized
    assert tracker.max_abs == 3.0


def test_ema_update():
    tracker = RangeTracker(momentum=0.5)
    tracker.observe(np.array([4.0]))
    tracker.observe(np.array([2.0]))
    assert tracker.max_abs == pytest.approx(0.5 * 4.0 + 0.5 * 2.0)


def test_zero_momentum_tracks_latest():
    tracker = RangeTracker(momentum=0.0)
    tracker.observe(np.array([10.0]))
    tracker.observe(np.array([1.0]))
    assert tracker.max_abs == 1.0


def test_percentile_mode_ignores_outliers():
    rng = np.random.default_rng(0)
    data = rng.uniform(0, 1, 10000)
    data[0] = 1000.0
    hard = RangeTracker(momentum=0.0)
    hard.observe(data)
    soft = RangeTracker(momentum=0.0, percentile=99.0)
    soft.observe(data)
    assert hard.max_abs == 1000.0
    assert soft.max_abs < 2.0


def test_empty_observation_is_noop():
    tracker = RangeTracker()
    tracker.observe(np.array([]))
    assert not tracker.initialized


def test_reset():
    tracker = RangeTracker()
    tracker.observe(np.array([5.0]))
    tracker.reset()
    assert not tracker.initialized


def test_validation():
    with pytest.raises(ConfigurationError):
        RangeTracker(momentum=1.0)
    with pytest.raises(ConfigurationError):
        RangeTracker(percentile=0.0)
