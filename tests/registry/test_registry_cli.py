"""End-to-end registry lifecycle through the CLI."""

import json

import pytest

from repro import nn, registry
from repro.cli import main
from repro.nn.serialization import network_state
from repro.zoo import build_network


@pytest.fixture
def root(tmp_path):
    return str(tmp_path / "reg")


def seed_artifact(root, seed, accuracy, energy, precision="fixed8"):
    """Publish directly (skipping CLI training) to keep tests fast."""
    store = registry.ArtifactStore(root)
    return store.publish(
        network_state(build_network("lenet_small", seed=seed)),
        network="lenet_small",
        precision=precision,
        dataset="digits",
        accuracy=accuracy,
        energy_uj_per_image=energy,
    )


def test_publish_from_weights_file(root, tmp_path, capsys):
    weights = str(tmp_path / "w.npz")
    nn.save_network_weights(build_network("lenet_small", seed=0), weights)
    code = main([
        "registry", "publish", "--root", root,
        "--network", "lenet_small", "--precision", "fixed8",
        "--weights", weights, "--n-train", "200", "--n-test", "100",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "published lenet_small@fixed8" in out
    manifests = registry.ArtifactStore(root).list_artifacts()
    assert len(manifests) == 1
    assert manifests[0].energy_uj_per_image > 0
    assert manifests[0].memory_kb > 0


def test_list_table_and_json(root, capsys):
    manifest = seed_artifact(root, 0, 0.94, 1.3)
    assert main(["registry", "list", "--root", root]) == 0
    out = capsys.readouterr().out
    assert manifest.short_digest() in out
    assert "94.00" in out

    assert main(["registry", "list", "--root", root, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["digest"] == manifest.digest


def test_promote_rollback_lifecycle(root, capsys):
    a = seed_artifact(root, 0, 0.90, 2.0)
    b = seed_artifact(root, 1, 0.95, 1.5)
    assert main(["registry", "promote", "--root", root,
                 "--channel", "prod", a.digest[:12]]) == 0
    assert main(["registry", "promote", "--root", root,
                 "--channel", "prod", b.digest[:12]]) == 0
    out = capsys.readouterr().out
    assert "prod -> v1" in out and "prod -> v2" in out

    assert main(["registry", "rollback", "--root", root,
                 "--channel", "prod"]) == 0
    assert "rolled back to v1" in capsys.readouterr().out
    store = registry.ArtifactStore(root)
    assert registry.Channel(store, "prod").active().digest == a.digest


def test_dominated_promotion_exits_nonzero(root, capsys):
    strong = seed_artifact(root, 0, 0.95, 1.0)
    weak = seed_artifact(root, 1, 0.90, 2.0)
    assert main(["registry", "promote", "--root", root,
                 "--channel", "prod", strong.digest[:12]]) == 0
    code = main(["registry", "promote", "--root", root,
                 "--channel", "prod", weak.digest[:12]])
    assert code == 2
    assert "dominated" in capsys.readouterr().err
    # --force overrides the gate
    assert main(["registry", "promote", "--root", root, "--channel", "prod",
                 weak.digest[:12], "--force"]) == 0


def test_unknown_ref_exits_nonzero(root, capsys):
    seed_artifact(root, 0, 0.94, 1.3)
    code = main(["registry", "promote", "--root", root,
                 "--channel", "prod", "ffffffff"])
    assert code == 2
    assert "no artifact matches" in capsys.readouterr().err


def test_registry_serve_runs_channel(root, capsys):
    manifest = seed_artifact(root, 0, 0.94, 1.3)
    assert main(["registry", "promote", "--root", root,
                 "--channel", "prod", manifest.digest[:12]]) == 0
    capsys.readouterr()
    code = main(["registry", "serve", "--root", root, "--channel", "prod",
                 "--requests", "16", "--concurrency", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "served prod v1" in out
    assert "0 client errors" in out


def test_serve_bench_deploys_channel(root, capsys):
    manifest = seed_artifact(root, 0, 0.94, 1.3)
    assert main(["registry", "promote", "--root", root,
                 "--channel", "prod", manifest.digest[:12]]) == 0
    capsys.readouterr()
    code = main([
        "serve-bench", "--registry", root, "--channel", "prod",
        "--requests", "32", "--concurrency", "8",
        "--skip-baseline", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["network"] == "lenet_small"
    assert payload["precision"] == "fixed8"
    assert payload["registry"]["digest"] == manifest.digest
    assert payload["registry"]["version"] == 1
    served = payload["report"]["served_artifacts"]["lenet_small@fixed8"]
    assert served["digest"] == manifest.digest
    assert served["batches"] >= 1


def test_sweep_publish_creates_artifacts(root, capsys):
    code = main([
        "sweep", "--network", "lenet_small",
        "--precisions", "float32", "fixed8",
        "--n-train", "200", "--n-test", "100",
        "--float-epochs", "2", "--qat-epochs", "1",
        "--no-cache", "--publish", root, "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    artifacts = {a["precision"]: a for a in payload["artifacts"]}
    assert set(artifacts) == {"float32", "fixed8"}
    store = registry.ArtifactStore(root)
    for entry in artifacts.values():
        manifest = store.get(entry["digest"])
        assert manifest.created_by == "repro sweep --publish"
        assert manifest.energy_uj_per_image > 0
    # int8 artifact should be cheaper than float on the modeled hw
    assert (artifacts["fixed8"]["energy_uj_per_image"]
            < artifacts["float32"]["energy_uj_per_image"])
