"""Deployer: zero-downtime rollout, bitwise rollback, fault recovery."""

import threading

import numpy as np
import pytest

from repro import registry, serve
from repro.data import load_dataset
from repro.errors import RegistryError
from repro.nn.serialization import network_state
from repro.obs.metrics import get_metrics
from repro.resilience import FaultInjector, use_injector
from repro.zoo import build_network


@pytest.fixture(scope="module")
def calibration():
    split = load_dataset("digits", n_train=64, n_test=32, seed=0)
    return {"digits": split.train.images}


@pytest.fixture
def store(tmp_path):
    return registry.ArtifactStore(str(tmp_path / "reg"))


def publish(store, seed, accuracy, energy):
    return store.publish(
        network_state(build_network("lenet_small", seed=seed)),
        network="lenet_small",
        precision="fixed8",
        dataset="digits",
        accuracy=accuracy,
        energy_uj_per_image=energy,
    )


def make_model_store(calibration):
    return serve.ModelStore(calibration_data=calibration)


def test_rollout_installs_registry_servable(store, calibration):
    manifest = publish(store, 0, 0.90, 2.0)
    chan = registry.Channel(store, "prod")
    chan.promote(manifest.digest)
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)

    report = deployer.rollout(chan)
    assert report.digest == manifest.digest
    assert report.version == 1
    assert report.previous_digest is None
    assert report.swap_ms < report.build_ms  # swap is the cheap locked part

    servable = model_store.get("lenet_small", "fixed8")
    assert servable.registry_digest == manifest.digest
    assert servable.registry_version == 1
    assert model_store.hits == 1  # install pre-populated the cache


def test_rollout_replaces_previous_servable(store, calibration):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)

    chan.promote(a.digest)
    deployer.rollout(chan)
    chan.promote(b.digest)
    report = deployer.rollout(chan)
    assert report.previous_digest == a.digest
    assert model_store.get("lenet_small", "fixed8").registry_digest == b.digest


def test_empty_channel_cannot_roll_out(store, calibration):
    chan = registry.Channel(store, "prod")
    deployer = registry.Deployer(store, make_model_store(calibration))
    with pytest.raises(RegistryError, match="nothing to roll out"):
        deployer.rollout(chan)


def test_rollback_restores_bitwise_identical_outputs(store, calibration):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)
    batch = calibration["digits"][:4]

    chan.promote(a.digest)
    deployer.rollout(chan)
    v1_logits = model_store.get("lenet_small", "fixed8").forward(batch)

    chan.promote(b.digest)
    deployer.rollout(chan)
    v2_logits = model_store.get("lenet_small", "fixed8").forward(batch)
    assert not np.array_equal(v1_logits, v2_logits)

    report = deployer.rollback(chan)
    assert report.rolled_back
    assert report.digest == a.digest
    restored = model_store.get("lenet_small", "fixed8").forward(batch)
    np.testing.assert_array_equal(restored, v1_logits)


def test_live_rollout_drops_no_requests(store, calibration):
    """Swap artifacts mid-load: every request completes, none are lost."""
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)
    chan.promote(a.digest)
    deployer.rollout(chan)

    server = serve.InferenceServer(
        model_store, workers=2, max_batch_size=8, max_delay_ms=1.0
    )
    results = {}

    def drive():
        results["load"] = serve.run_closed_loop(
            server,
            calibration["digits"],
            "lenet_small",
            "fixed8",
            n_requests=200,
            concurrency=16,
        )

    with server:
        loader = threading.Thread(target=drive)
        loader.start()
        chan.promote(b.digest)
        report = deployer.rollout(chan)  # swap while traffic is flowing
        loader.join(timeout=120)
    assert not loader.is_alive()

    load = results["load"]
    assert load.lost == 0
    assert load.client_errors == 0
    assert load.accounted == load.submitted == 200
    assert report.previous_digest == a.digest
    served = server.stats.report().served_artifacts["lenet_small@fixed8"]
    assert served["digest"] in (a.digest, b.digest)


def test_transient_load_fault_is_retried(store, calibration):
    manifest = publish(store, 0, 0.90, 2.0)
    chan = registry.Channel(store, "prod")
    chan.promote(manifest.digest)
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)

    injector = FaultInjector(seed=0).arm(
        "registry.load", mode="raise", rate=1.0, max_fires=2
    )
    before = get_metrics().counter("registry.build_retries").value
    with use_injector(injector):
        report = deployer.rollout(chan)
    assert report.digest == manifest.digest
    assert get_metrics().counter("registry.build_retries").value - before == 2
    assert injector.counts()["registry.load"] == 2


def test_failed_deploy_auto_rolls_back_the_channel(store, calibration):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)
    chan.promote(a.digest)
    deployer.rollout(chan)

    injector = FaultInjector(seed=0).arm("registry.load", rate=1.0)
    with use_injector(injector):
        with pytest.raises(RegistryError, match="restored to v1"):
            deployer.deploy(chan, b.digest)

    # channel points back at what is actually serving
    assert chan.active().digest == a.digest
    assert registry.Channel(store, "prod").active().digest == a.digest
    assert model_store.get("lenet_small", "fixed8").registry_digest == a.digest
    # history still records the attempted promotion
    assert [v.digest for v in chan.history()] == [a.digest, b.digest]


def test_registry_operations_land_in_obs_snapshot(store, calibration):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    model_store = make_model_store(calibration)
    deployer = registry.Deployer(store, model_store)
    chan.promote(a.digest)
    deployer.rollout(chan)
    chan.promote(b.digest)
    deployer.rollout(chan)
    chan.rollback()

    snap = get_metrics().snapshot()
    for name in ("registry.publishes", "registry.promotions",
                 "registry.rollbacks", "registry.rollouts"):
        assert snap["counters"].get(name, 0) >= 1, name
    assert snap["histograms"]["registry.swap_ms"]["count"] >= 2


def test_failed_first_deploy_reports_nothing_running(store, calibration):
    manifest = publish(store, 0, 0.90, 2.0)
    chan = registry.Channel(store, "prod")
    deployer = registry.Deployer(store, make_model_store(calibration))

    injector = FaultInjector(seed=0).arm("registry.load", rate=1.0)
    with use_injector(injector):
        with pytest.raises(RegistryError, match="nothing was previously"):
            deployer.deploy(chan, manifest.digest)
