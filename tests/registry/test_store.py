"""ArtifactStore: content addressing, atomic publish, recovery."""

import json
import os

import numpy as np
import pytest

from repro import registry
from repro.errors import RegistryError
from repro.nn.serialization import network_state, state_dict_digest
from repro.zoo import build_network


@pytest.fixture
def state():
    return network_state(build_network("lenet_small", seed=0))


@pytest.fixture
def store(tmp_path):
    return registry.ArtifactStore(str(tmp_path / "reg"))


def publish(store, state, **overrides):
    kwargs = dict(
        network="lenet_small",
        precision="fixed8",
        dataset="digits",
        split="test",
        accuracy=0.94,
        energy_uj_per_image=1.3,
    )
    kwargs.update(overrides)
    return store.publish(state, **kwargs)


def test_publish_round_trip(store, state):
    manifest = publish(store, state)
    assert manifest.digest == registry.artifact_digest(
        "lenet_small", "fixed8", state_dict_digest(state)
    )
    loaded = store.get(manifest.digest)
    assert loaded == store.get(manifest.short_digest())  # prefix resolve
    assert loaded.network == "lenet_small"
    assert loaded.precision == "fixed8"
    assert loaded.accuracy == pytest.approx(0.94)
    restored = store.load_state(manifest.digest)
    for name, array in state.items():
        np.testing.assert_array_equal(restored[name], array)


def test_precision_spelling_is_canonicalized(store, state):
    a = publish(store, state, precision="fixed8")
    b = publish(store, state, precision="fixed:8:8")
    assert a.digest == b.digest
    assert len(store) == 1


def test_republish_is_idempotent_but_updates_metrics(store, state):
    first = publish(store, state, accuracy=0.90)
    second = publish(store, state, accuracy=0.95)
    assert first.digest == second.digest
    assert len(store) == 1
    assert store.get(first.digest).accuracy == pytest.approx(0.95)


def test_metrics_do_not_change_the_address(store, state):
    a = publish(store, state, accuracy=0.90, energy_uj_per_image=9.0)
    b = publish(store, state, accuracy=0.10, energy_uj_per_image=1.0)
    assert a.digest == b.digest


def test_different_weights_mint_different_artifacts(store, state):
    other = network_state(build_network("lenet_small", seed=1))
    a = publish(store, state)
    b = publish(store, other)
    assert a.digest != b.digest
    assert sorted(store.digests()) == sorted([a.digest, b.digest])


def test_resolve_unknown_and_ambiguous(store, state):
    manifest = publish(store, state)
    with pytest.raises(RegistryError):
        store.resolve("ffffffff")
    with pytest.raises(RegistryError):
        store.resolve("")
    # every stored digest shares the empty-ish common prefix with itself
    assert store.resolve(manifest.digest[:6]) == manifest.digest


def test_load_network_reproduces_forward_pass(store, state):
    manifest = publish(store, state)
    network = store.load_network(manifest.digest)
    reference = build_network("lenet_small", seed=0)
    batch = np.random.default_rng(0).normal(size=(2, 1, 28, 28)).astype(
        np.float32
    )
    np.testing.assert_array_equal(
        network.predict(batch), reference.predict(batch)
    )


def test_corrupt_manifest_recovers_identity(store, state):
    manifest = publish(store, state)
    with open(store.manifest_path(manifest.digest), "w") as handle:
        handle.write("{ not json")
    recovered = store.get(manifest.digest)
    # identity comes back from the digest probe; metrics are lost
    assert recovered.network == "lenet_small"
    assert recovered.precision == "fixed8"
    assert recovered.weights_digest == manifest.weights_digest
    assert recovered.extra.get("recovered") == "true"
    assert recovered.accuracy != recovered.accuracy  # nan
    # the rewritten manifest reads clean afterwards
    clean = store.get(manifest.digest)
    assert clean.network == "lenet_small"
    assert store.verify(manifest.digest)


def test_missing_manifest_is_rebuilt(store, state):
    manifest = publish(store, state)
    os.remove(store.manifest_path(manifest.digest))
    assert store.get(manifest.digest).weights_digest == manifest.weights_digest


def test_corrupt_weights_are_unrecoverable(store, state):
    manifest = publish(store, state)
    with open(store.weights_path(manifest.digest), "wb") as handle:
        handle.write(b"\x00" * 64)
    with pytest.raises(RegistryError):
        store.load_state(manifest.digest)
    assert not store.verify(manifest.digest)
    # manifest damaged too -> genuinely lost
    os.remove(store.manifest_path(manifest.digest))
    with pytest.raises(RegistryError, match="unrecoverable"):
        store.get(manifest.digest)


def test_weight_digest_mismatch_is_detected(store, state):
    manifest = publish(store, state)
    # swap in a *valid* archive with different parameters
    other = network_state(build_network("lenet_small", seed=1))
    np.savez_compressed(store.weights_path(manifest.digest), **other)
    with pytest.raises(RegistryError, match="digest mismatch"):
        store.load_state(manifest.digest)


def test_list_artifacts_sorted_and_counted(store, state):
    publish(store, state)
    publish(store, network_state(build_network("lenet_small", seed=1)))
    manifests = store.list_artifacts()
    assert len(manifests) == len(store) == 2
    stamps = [m.created_unix for m in manifests]
    assert stamps == sorted(stamps)


def test_manifest_json_is_stable_on_disk(store, state):
    manifest = publish(store, state)
    with open(store.manifest_path(manifest.digest)) as handle:
        payload = json.load(handle)
    assert payload["digest"] == manifest.digest
    assert payload["schema"] == registry.store.MANIFEST_SCHEMA
    # round trip through from_dict matches what the store itself reads
    # (compare via the parsed copy: the unmeasured fields are nan)
    assert registry.ArtifactManifest.from_dict(payload) == store.get(
        manifest.digest
    )


def test_manifest_from_dict_rejects_junk():
    with pytest.raises(RegistryError):
        registry.ArtifactManifest.from_dict({"digest": "abc"})
    with pytest.raises(RegistryError):
        registry.ArtifactManifest.from_dict([1, 2])
