"""Channels: ordered promotion history, rollback, pinning, persistence."""

import pytest

from repro import registry
from repro.errors import PromotionRejectedError, RegistryError
from repro.nn.serialization import network_state
from repro.zoo import build_network


@pytest.fixture
def store(tmp_path):
    return registry.ArtifactStore(str(tmp_path / "reg"))


def publish(store, seed, accuracy, energy):
    return store.publish(
        network_state(build_network("lenet_small", seed=seed)),
        network="lenet_small",
        precision="fixed8",
        accuracy=accuracy,
        energy_uj_per_image=energy,
    )


def test_promote_appends_versions(store):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    assert chan.active() is None
    v1 = chan.promote(a.digest)
    v2 = chan.promote(b.digest, note="sweep winner")
    assert (v1.version, v2.version) == (1, 2)
    assert chan.active().digest == b.digest
    assert chan.active_manifest().accuracy == pytest.approx(0.95)
    assert [v.version for v in chan.history()] == [1, 2]
    assert chan.version(2).note == "sweep winner"


def test_promoting_active_digest_is_noop(store):
    a = publish(store, 0, 0.90, 2.0)
    chan = registry.Channel(store, "prod")
    chan.promote(a.digest)
    again = chan.promote(a.short_digest())
    assert again.version == 1
    assert len(chan.history()) == 1


def test_rollback_moves_pointer_without_erasing_history(store):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    chan.promote(a.digest)
    chan.promote(b.digest)
    target = chan.rollback()
    assert target.digest == a.digest
    assert chan.active().version == 1
    assert len(chan.history()) == 2  # history intact
    # promoting after a rollback appends after the full history
    v3 = chan.promote(b.digest)
    assert v3.version == 3


def test_rollback_bounds(store):
    chan = registry.Channel(store, "prod")
    with pytest.raises(RegistryError):
        chan.rollback()  # empty channel
    a = publish(store, 0, 0.90, 2.0)
    chan.promote(a.digest)
    with pytest.raises(RegistryError):
        chan.rollback()  # nothing earlier
    with pytest.raises(RegistryError):
        chan.rollback(0)


def test_pin_blocks_mutations(store):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    chan.promote(a.digest)
    chan.pin()
    with pytest.raises(RegistryError, match="pinned"):
        chan.promote(b.digest)
    with pytest.raises(RegistryError, match="pinned"):
        chan.rollback()
    chan.unpin()
    assert chan.promote(b.digest).version == 2


def test_state_persists_across_instances(store):
    a = publish(store, 0, 0.90, 2.0)
    b = publish(store, 1, 0.95, 1.5)
    chan = registry.Channel(store, "prod")
    chan.promote(a.digest)
    chan.promote(b.digest)
    chan.rollback()
    chan.pin()

    reloaded = registry.Channel(store, "prod")
    assert reloaded.active().digest == a.digest
    assert [v.digest for v in reloaded.history()] == [a.digest, b.digest]
    assert reloaded.pinned


def test_corrupt_channel_file_raises(store):
    a = publish(store, 0, 0.90, 2.0)
    registry.Channel(store, "prod").promote(a.digest)
    with open(store.channel_path("prod"), "w") as handle:
        handle.write("{ nope")
    with pytest.raises(RegistryError, match="corrupt"):
        registry.Channel(store, "prod")


def test_invalid_channel_names_rejected(store):
    for name in ("", "../prod", ".hidden", "a/b"):
        with pytest.raises(RegistryError):
            registry.Channel(store, name)


def test_policy_gate_applies_at_promote(store):
    good = publish(store, 0, 0.95, 1.5)
    dominated = publish(store, 1, 0.90, 2.0)  # worse on both axes
    chan = registry.Channel(store, "prod")
    policy = registry.PromotionPolicy()
    chan.promote(good.digest, policy=policy)
    with pytest.raises(PromotionRejectedError, match="dominated"):
        chan.promote(dominated.digest, policy=policy)
    assert len(chan.history()) == 1
    # break-glass force records the promotion anyway
    entry = chan.promote(dominated.digest, policy=policy, force=True)
    assert entry.version == 2
