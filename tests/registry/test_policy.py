"""PromotionPolicy: the paper's Pareto argument as a deployment gate."""

import pytest

from repro import registry
from repro.errors import PromotionRejectedError
from repro.registry.store import ArtifactManifest


def manifest(accuracy, energy, digest="d" * 64, precision="fixed8"):
    return ArtifactManifest(
        digest=digest,
        network="lenet_small",
        precision=precision,
        weights_digest="w" * 64,
        accuracy=accuracy,
        energy_uj_per_image=energy,
    )


def test_design_point_uses_figure4_conventions():
    point = registry.design_point(manifest(0.94, 1.3))
    assert point.accuracy == pytest.approx(94.0)  # percent
    assert point.energy_uj == pytest.approx(1.3)
    assert point.label == "lenet_small@fixed8"
    assert point.metadata["digest"] == "d" * 64


def test_dominated_candidate_rejected():
    policy = registry.PromotionPolicy()
    incumbent = manifest(0.95, 1.0)
    candidate = manifest(0.90, 2.0)  # worse accuracy AND worse energy
    violations = policy.check(candidate, incumbent)
    assert any("dominated" in v for v in violations)


def test_frontier_tradeoff_passes():
    policy = registry.PromotionPolicy()
    incumbent = manifest(0.95, 1.0)
    cheaper_but_less_accurate = manifest(0.93, 0.5)
    assert policy.check(cheaper_but_less_accurate, incumbent) == []


def test_strict_improvement_passes():
    policy = registry.PromotionPolicy()
    assert policy.check(manifest(0.96, 0.9), manifest(0.95, 1.0)) == []


def test_first_promotion_has_no_incumbent():
    assert registry.PromotionPolicy().check(manifest(0.5, 9.0), None) == []


def test_absolute_floors_and_budgets():
    policy = registry.PromotionPolicy(min_accuracy=0.90, max_energy_uj=2.0)
    assert policy.check(manifest(0.92, 1.5)) == []
    assert any("floor" in v for v in policy.check(manifest(0.80, 1.5)))
    assert any("budget" in v for v in policy.check(manifest(0.92, 3.0)))


def test_max_accuracy_drop_vs_incumbent():
    policy = registry.PromotionPolicy(
        require_non_dominated=False, max_accuracy_drop=0.01
    )
    incumbent = manifest(0.95, 1.0)
    assert policy.check(manifest(0.945, 0.5), incumbent) == []
    assert any(
        "drop" in v for v in policy.check(manifest(0.90, 0.5), incumbent)
    )


def test_unmeasured_metrics_rejected_by_default():
    policy = registry.PromotionPolicy()
    violations = policy.check(manifest(float("nan"), float("nan")))
    assert len(violations) == 2
    relaxed = registry.PromotionPolicy(require_metrics=False)
    assert relaxed.check(manifest(float("nan"), float("nan"))) == []


def test_reject_raises_typed_error_listing_violations():
    policy = registry.PromotionPolicy(min_accuracy=0.99)
    candidate = manifest(0.50, 1.0)
    violations = policy.check(candidate)
    with pytest.raises(PromotionRejectedError, match="floor"):
        policy.reject("prod", candidate, violations)
