"""Canary rollouts: traffic-split verdicts, promote/rollback actions.

The controller only talks to a fleet through ``config.replicas``,
``replica_metrics()`` and ``deploy_to(...)``, so these tests drive it
with an in-process fake — verdict logic and channel bookkeeping need
no real replica processes behind them (``tests/serve/test_fleet.py``
and the CLI smoke cover the live wiring).
"""

from types import SimpleNamespace

import pytest

from repro import registry
from repro.errors import ConfigurationError, RegistryError
from repro.nn.serialization import network_state
from repro.registry import CanaryController, CanaryPolicy
from repro.zoo import build_network


class FakeFleet:
    """Just enough fleet surface for the controller: counters + deploys."""

    def __init__(self, replicas=4):
        self.config = SimpleNamespace(replicas=replicas)
        self.metrics = {
            index: {"completed": 0, "failed": 0, "latencies_ms": [],
                    "restarts": 0, "ready": True}
            for index in range(replicas)
        }
        self.deploys = []

    def replica_metrics(self):
        return {
            index: dict(snap, latencies_ms=list(snap["latencies_ms"]))
            for index, snap in self.metrics.items()
        }

    def deploy_to(self, indices, root, channel, digest, version,
                  sabotage=False, timeout_s=120.0):
        self.deploys.append({
            "indices": tuple(indices), "digest": digest,
            "version": version, "sabotage": sabotage,
        })

    def serve(self, index, completed=0, failed=0, latency_ms=5.0):
        snap = self.metrics[index]
        snap["completed"] += completed
        snap["failed"] += failed
        snap["latencies_ms"].extend([latency_ms] * completed)


@pytest.fixture
def store(tmp_path):
    return registry.ArtifactStore(str(tmp_path / "reg"))


def publish(store, seed, accuracy=0.9, energy=2.0):
    return store.publish(
        network_state(build_network("lenet_small", seed=seed)),
        network="lenet_small",
        precision="fixed8",
        dataset="digits",
        accuracy=accuracy,
        energy_uj_per_image=energy,
    )


def begin_canary(store, fleet, policy=None):
    incumbent = publish(store, 0)
    candidate = publish(store, 1, accuracy=0.95)
    channel = registry.Channel(store, "prod")
    channel.promote(incumbent.digest)
    controller = CanaryController(
        fleet, store, channel, policy=policy or CanaryPolicy(min_requests=10)
    )
    indices = controller.begin(candidate.digest)
    return controller, channel, incumbent, candidate, indices


def test_begin_deploys_candidate_to_highest_indices(store):
    fleet = FakeFleet(replicas=4)
    controller, channel, incumbent, candidate, indices = begin_canary(
        store, fleet
    )
    # fraction 0.25 of 4 replicas -> exactly one canary, replica 0 control
    assert indices == (3,)
    assert fleet.deploys == [{
        "indices": (3,), "digest": candidate.digest,
        "version": 2, "sabotage": False,
    }]
    # the channel pointer did not move on begin
    assert channel.active().digest == incumbent.digest


def test_decide_waits_until_both_groups_have_traffic(store):
    fleet = FakeFleet(replicas=4)
    controller, *_ = begin_canary(store, fleet)
    assert controller.decide().verdict == "wait"
    fleet.serve(3, completed=50)         # canary traffic only
    decision = controller.decide()
    assert decision.verdict == "wait"
    assert "control=0" in decision.reason
    with pytest.raises(RegistryError, match="wait"):
        controller.finish()


def test_healthy_canary_promotes_and_rolls_control_forward(store):
    fleet = FakeFleet(replicas=4)
    controller, channel, incumbent, candidate, indices = begin_canary(
        store, fleet
    )
    for index in range(4):
        fleet.serve(index, completed=30, latency_ms=4.0)
    decision = controller.decide()
    assert decision.verdict == "promote"
    assert decision.canary_requests == 30
    assert decision.control_requests == 90

    report = controller.finish(decision)
    assert report.outcome == "promoted"
    assert report.digest == candidate.digest
    assert report.version == 2
    # the channel gained a real version and the control group follows
    assert channel.active().digest == candidate.digest
    assert [v.version for v in channel.versions] == [1, 2]
    assert fleet.deploys[-1]["indices"] == (0, 1, 2)
    assert fleet.deploys[-1]["digest"] == candidate.digest


def test_regressing_canary_rolls_back_without_touching_channel(store):
    fleet = FakeFleet(replicas=4)
    controller, channel, incumbent, candidate, indices = begin_canary(
        store, fleet
    )
    for index in (0, 1, 2):
        fleet.serve(index, completed=30)
    fleet.serve(3, completed=15, failed=15)   # 50% canary error rate
    decision = controller.decide()
    assert decision.verdict == "rollback"
    assert "error rate" in decision.reason

    report = controller.finish(decision)
    assert report.outcome == "rolled_back"
    assert report.version is None
    # the bad artifact leaves no trace: channel history is untouched
    assert channel.active().digest == incumbent.digest
    assert [v.version for v in channel.versions] == [1]
    # canary replicas were redeployed onto the incumbent
    assert fleet.deploys[-1] == {
        "indices": (3,), "digest": incumbent.digest,
        "version": 1, "sabotage": False,
    }


def test_tail_latency_regression_also_rolls_back(store):
    fleet = FakeFleet(replicas=4)
    policy = CanaryPolicy(min_requests=10, max_p99_increase_pct=50.0)
    controller, channel, incumbent, *_ = begin_canary(store, fleet, policy)
    for index in (0, 1, 2):
        fleet.serve(index, completed=30, latency_ms=4.0)
    fleet.serve(3, completed=30, latency_ms=40.0)   # 10x the control p99
    decision = controller.decide()
    assert decision.verdict == "rollback"
    assert "p99" in decision.reason
    assert controller.finish(decision).outcome == "rolled_back"
    assert channel.active().digest == incumbent.digest


def test_only_traffic_after_begin_counts(store):
    fleet = FakeFleet(replicas=4)
    # pre-canary history: the canary replica was failing hard before
    fleet.serve(3, completed=10, failed=90)
    controller, *_ = begin_canary(store, fleet)
    for index in range(4):
        fleet.serve(index, completed=30, latency_ms=4.0)
    # baselines snapshot at begin() — old failures must not condemn it
    assert controller.decide().verdict == "promote"


def test_begin_rejects_bad_setups(store):
    channel = registry.Channel(store, "prod")
    incumbent = publish(store, 0)
    candidate = publish(store, 1)

    # a 1-replica fleet has no control group
    small = CanaryController(FakeFleet(replicas=1), store, channel)
    channel.promote(incumbent.digest)
    with pytest.raises(ConfigurationError, match="2 replicas"):
        small.begin(candidate.digest)

    # candidate == incumbent is a no-op, not a canary
    controller = CanaryController(FakeFleet(), store, channel)
    with pytest.raises(RegistryError, match="already active"):
        controller.begin(incumbent.digest)

    # double-begin
    controller.begin(candidate.digest)
    with pytest.raises(RegistryError, match="in progress"):
        controller.begin(candidate.digest)


def test_begin_requires_an_incumbent(store):
    channel = registry.Channel(store, "prod")
    candidate = publish(store, 1)
    controller = CanaryController(FakeFleet(), store, channel)
    with pytest.raises(RegistryError, match="no incumbent"):
        controller.begin(candidate.digest)


def test_decide_and_finish_require_active_rollout(store):
    controller = CanaryController(
        FakeFleet(), store, registry.Channel(store, "prod")
    )
    with pytest.raises(RegistryError, match="no canary"):
        controller.decide()
    with pytest.raises(RegistryError, match="no canary"):
        controller.finish()


def test_policy_validates_fraction_and_min_requests():
    with pytest.raises(ConfigurationError):
        CanaryPolicy(fraction=0.0)
    with pytest.raises(ConfigurationError):
        CanaryPolicy(fraction=1.0)
    with pytest.raises(ConfigurationError):
        CanaryPolicy(min_requests=0)


def test_half_fraction_still_keeps_replica_zero_as_control(store):
    fleet = FakeFleet(replicas=2)
    policy = CanaryPolicy(fraction=0.9, min_requests=5)
    controller, channel, incumbent, candidate, indices = begin_canary(
        store, fleet, policy
    )
    # rounding up can never swallow the whole fleet
    assert indices == (1,)
