"""Loss function tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import nn
from repro.errors import ShapeError


def test_softmax_rows_sum_to_one():
    logits = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]], dtype=np.float32)
    probs = nn.softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs >= 0)


def test_softmax_shift_invariance():
    logits = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
    assert np.allclose(nn.softmax(logits), nn.softmax(logits + 100.0), atol=1e-6)


def test_cross_entropy_matches_manual():
    logits = np.array([[2.0, 1.0, 0.0]], dtype=np.float32)
    labels = np.array([0])
    loss, grad = nn.SoftmaxCrossEntropy().compute(logits, labels)
    probs = nn.softmax(logits)
    assert np.isclose(loss, -np.log(probs[0, 0]), atol=1e-6)
    expected_grad = probs.copy()
    expected_grad[0, 0] -= 1.0
    assert np.allclose(grad, expected_grad, atol=1e-6)


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.array([[100.0, 0.0]], dtype=np.float32)
    loss, _ = nn.SoftmaxCrossEntropy().compute(logits, np.array([0]))
    assert loss < 1e-3


def test_cross_entropy_gradient_sums_to_zero_per_row():
    rng = np.random.default_rng(0)
    logits = rng.standard_normal((4, 5)).astype(np.float32)
    labels = np.array([0, 1, 2, 3])
    _, grad = nn.SoftmaxCrossEntropy().compute(logits, labels)
    assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-6)


def test_label_smoothing_softens_target():
    logits = np.array([[10.0, 0.0]], dtype=np.float32)
    plain, _ = nn.SoftmaxCrossEntropy().compute(logits, np.array([0]))
    smoothed, _ = nn.SoftmaxCrossEntropy(label_smoothing=0.2).compute(
        logits, np.array([0])
    )
    assert smoothed > plain


def test_cross_entropy_shape_validation():
    loss = nn.SoftmaxCrossEntropy()
    with pytest.raises(ShapeError):
        loss.compute(np.zeros((2, 3, 1), dtype=np.float32), np.array([0, 1]))
    with pytest.raises(ShapeError):
        loss.compute(np.zeros((2, 3), dtype=np.float32), np.array([0]))
    with pytest.raises(ShapeError):
        nn.SoftmaxCrossEntropy(label_smoothing=1.5)


def test_mse_values_and_gradient():
    pred = np.array([[1.0, 2.0]], dtype=np.float32)
    target = np.array([[0.0, 0.0]], dtype=np.float32)
    loss, grad = nn.MeanSquaredError().compute(pred, target)
    assert np.isclose(loss, 2.5)
    assert np.allclose(grad, [[1.0, 2.0]])


def test_mse_shape_validation():
    with pytest.raises(ShapeError):
        nn.MeanSquaredError().compute(
            np.zeros((2, 2), dtype=np.float32), np.zeros((2, 3), dtype=np.float32)
        )


@settings(max_examples=30, deadline=None)
@given(
    logits=hnp.arrays(
        np.float32, (3, 4),
        elements=st.floats(-20, 20, width=32),
    ),
    labels=st.lists(st.integers(0, 3), min_size=3, max_size=3),
)
def test_cross_entropy_properties(logits, labels):
    labels = np.array(labels)
    loss, grad = nn.SoftmaxCrossEntropy().compute(logits, labels)
    assert loss >= -1e-6, "cross entropy is non-negative"
    assert np.all(np.isfinite(grad))
    # gradient magnitude bounded by 1/N per element
    assert np.max(np.abs(grad)) <= 1.0 / 3 + 1e-6
