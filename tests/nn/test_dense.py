"""Dense and Flatten layer tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def test_dense_forward_affine():
    dense = nn.Dense(3, 2)
    dense.weight.set_data(np.array([[1, 0], [0, 1], [1, 1]], dtype=np.float32))
    dense.bias.set_data(np.array([0.5, -0.5], dtype=np.float32))
    x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
    out = dense.forward(x)
    assert np.allclose(out, [[4.5, 4.5]])


def test_dense_backward_gradients():
    rng = np.random.default_rng(0)
    dense = nn.Dense(4, 3, rng=rng)
    x = rng.standard_normal((5, 4)).astype(np.float32)
    out = dense.forward(x)
    grad_out = rng.standard_normal(out.shape).astype(np.float32)
    grad_x = dense.backward(grad_out)
    assert np.allclose(dense.weight.grad, x.T @ grad_out, atol=1e-5)
    assert np.allclose(dense.bias.grad, grad_out.sum(axis=0), atol=1e-5)
    assert np.allclose(grad_x, grad_out @ dense.weight.data.T, atol=1e-5)


def test_dense_gradcheck():
    rng = np.random.default_rng(1)
    net = nn.Sequential([nn.Dense(6, 4, rng=rng), nn.Tanh(), nn.Dense(4, 3, rng=rng)])
    x = rng.standard_normal((3, 6)).astype(np.float32)
    y = np.array([0, 1, 2])
    errors = nn.check_gradients(net, nn.SoftmaxCrossEntropy(), x, y)
    assert max(errors.values()) < 1e-2


def test_dense_no_bias():
    dense = nn.Dense(3, 2, use_bias=False)
    assert dense.bias is None
    assert len(dense.parameters()) == 1


def test_dense_macs():
    assert nn.Dense(800, 500).macs((800,)) == 400000


def test_dense_shape_validation():
    dense = nn.Dense(3, 2)
    with pytest.raises(ShapeError):
        dense.forward(np.zeros((2, 4), dtype=np.float32))
    with pytest.raises(ShapeError):
        dense.output_shape((4,))
    with pytest.raises(ConfigurationError):
        nn.Dense(0, 2)


def test_flatten_roundtrip():
    flat = nn.Flatten()
    x = np.arange(24, dtype=np.float32).reshape(2, 3, 2, 2)
    out = flat.forward(x)
    assert out.shape == (2, 12)
    back = flat.backward(out)
    assert np.array_equal(back, x)


def test_flatten_output_shape():
    assert nn.Flatten().output_shape((3, 4, 4)) == (48,)


def test_flatten_backward_before_forward_raises():
    with pytest.raises(ShapeError):
        nn.Flatten().backward(np.zeros((1, 4), dtype=np.float32))


def test_dense_weight_parameters_excludes_bias():
    dense = nn.Dense(3, 2)
    weights = dense.weight_parameters()
    assert weights == [dense.weight]
