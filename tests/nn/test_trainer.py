"""Training loop tests on tiny synthetic problems."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, TrainingError


def linearly_separable(n=80, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4)).astype(np.float32)
    labels = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return x, labels


def make_mlp(seed=0):
    gen = np.random.default_rng(seed)
    return nn.Sequential(
        [nn.Dense(4, 8, rng=gen), nn.ReLU(), nn.Dense(8, 2, rng=gen)]
    )


def test_fit_improves_accuracy():
    x, y = linearly_separable()
    net = make_mlp()
    trainer = nn.Trainer(net, nn.SGD(net.parameters(), lr=0.1), batch_size=16)
    before = trainer.evaluate(x, y)["accuracy"]
    trainer.fit(x, y, epochs=15)
    after = trainer.evaluate(x, y)["accuracy"]
    assert after > before
    assert after > 0.9


def test_history_records_every_epoch():
    x, y = linearly_separable()
    net = make_mlp()
    trainer = nn.Trainer(net, nn.SGD(net.parameters(), lr=0.05))
    history = trainer.fit(x, y, x, y, epochs=4)
    assert history.epochs == 4
    assert len(history.val_accuracy) == 4
    assert history.best_val_accuracy == max(history.val_accuracy)


def test_early_stopping_halts():
    x, y = linearly_separable()
    net = make_mlp()
    # zero learning rate: validation accuracy can never improve
    trainer = nn.Trainer(net, nn.SGD(net.parameters(), lr=1e-12))
    stopper = nn.EarlyStopping(patience=2)
    history = trainer.fit(x, y, x, y, epochs=50, early_stopping=stopper)
    assert history.epochs <= 4


def test_early_stopping_validation():
    with pytest.raises(ConfigurationError):
        nn.EarlyStopping(patience=0)


def test_divergence_raises_training_error():
    x, y = linearly_separable()
    net = make_mlp()
    # absurd learning rate forces NaN/inf loss quickly
    trainer = nn.Trainer(net, nn.SGD(net.parameters(), lr=1e6, momentum=0.0))
    with pytest.raises(TrainingError):
        trainer.fit(x, y, epochs=20)


def test_hooks_called_around_each_step():
    x, y = linearly_separable(n=32)
    net = make_mlp()
    calls = []
    trainer = nn.Trainer(
        net,
        nn.SGD(net.parameters(), lr=0.01),
        batch_size=16,
        before_step=lambda: calls.append("before"),
        after_step=lambda: calls.append("after"),
    )
    trainer.fit(x, y, epochs=1)
    assert calls == ["before", "after"] * 2  # 32 samples / batch 16


def test_mismatched_lengths_rejected():
    net = make_mlp()
    trainer = nn.Trainer(net, nn.SGD(net.parameters(), lr=0.01))
    with pytest.raises(ConfigurationError):
        trainer.fit(np.zeros((4, 4), dtype=np.float32), np.zeros(3, dtype=np.int64))


def test_invalid_batch_size():
    net = make_mlp()
    with pytest.raises(ConfigurationError):
        nn.Trainer(net, nn.SGD(net.parameters(), lr=0.01), batch_size=0)


def test_training_is_deterministic_given_seed():
    x, y = linearly_separable()

    def run():
        net = make_mlp(seed=7)
        trainer = nn.Trainer(
            net, nn.SGD(net.parameters(), lr=0.05),
            rng=np.random.default_rng(3),
        )
        trainer.fit(x, y, epochs=3)
        return [p.data.copy() for p in net.parameters()]

    first, second = run(), run()
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
