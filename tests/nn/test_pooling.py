"""Pooling semantics: values, Caffe ceil-mode shapes, gradients."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def test_maxpool_values_2x2():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    pool = nn.MaxPool2D(2)
    out = pool.forward(x)
    assert out.shape == (1, 1, 2, 2)
    assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_avgpool_values_2x2():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    pool = nn.AvgPool2D(2)
    out = pool.forward(x)
    assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_ceil_mode_shapes_match_caffe():
    # the ALEX pooling chain: 32 -> 16 -> 8 -> 4
    pool = nn.MaxPool2D(3, stride=2)
    assert pool.output_shape((1, 32, 32)) == (1, 16, 16)
    assert pool.output_shape((1, 16, 16)) == (1, 8, 8)
    assert pool.output_shape((1, 8, 8)) == (1, 4, 4)


def test_floor_mode_shapes():
    pool = nn.MaxPool2D(3, stride=2, ceil_mode=False)
    assert pool.output_shape((1, 32, 32)) == (1, 15, 15)


def test_maxpool_partial_window_uses_real_values():
    """Ceil-mode edge windows must ignore the -inf padding."""
    x = -np.ones((1, 1, 5, 5), dtype=np.float32)
    pool = nn.MaxPool2D(2, stride=2)  # 5 -> 3 with ceil mode
    out = pool.forward(x)
    assert out.shape == (1, 1, 3, 3)
    assert np.all(out == -1.0), "padding must never win the max"


def test_avgpool_partial_window_caffe_divisor():
    """Caffe AVE divides by the full window, counting padding as zero."""
    x = np.ones((1, 1, 3, 3), dtype=np.float32)
    pool = nn.AvgPool2D(2, stride=2)  # 3 -> 2 with ceil mode
    out = pool.forward(x)
    # corner window sees one real pixel out of four
    assert np.isclose(out[0, 0, 1, 1], 0.25)
    assert np.isclose(out[0, 0, 0, 0], 1.0)


def test_maxpool_backward_routes_to_argmax():
    x = np.array([[[[1.0, 3.0], [2.0, 0.0]]]], dtype=np.float32)
    pool = nn.MaxPool2D(2)
    pool.forward(x)
    grad = pool.backward(np.array([[[[5.0]]]], dtype=np.float32))
    assert np.array_equal(grad[0, 0], [[0.0, 5.0], [0.0, 0.0]])


def test_avgpool_backward_uniform():
    x = np.zeros((1, 1, 4, 4), dtype=np.float32)
    pool = nn.AvgPool2D(2)
    pool.forward(x)
    grad = pool.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
    assert np.allclose(grad, 0.25)


@pytest.mark.parametrize("pool_cls", [nn.MaxPool2D, nn.AvgPool2D])
def test_pool_gradients_numerically(pool_cls):
    rng = np.random.default_rng(0)
    net = nn.Sequential([pool_cls(3, stride=2)])
    x = rng.standard_normal((2, 2, 7, 7)).astype(np.float32)
    y = rng.standard_normal(net.forward(x).shape).astype(np.float32)
    errors = nn.check_gradients(net, nn.MeanSquaredError(), x, y)
    # pooling has no parameters; check the input gradient instead
    out = net.forward(x)
    loss, grad = nn.MeanSquaredError().compute(out, y)
    grad_x = net.backward(grad)
    eps = 1e-2
    sample_indices = [(0, 0, 0, 0), (1, 1, 3, 3), (0, 1, 6, 6)]
    for idx in sample_indices:
        orig = x[idx]
        x[idx] = orig + eps
        up, _ = nn.MeanSquaredError().compute(net.forward(x), y)
        x[idx] = orig - eps
        down, _ = nn.MeanSquaredError().compute(net.forward(x), y)
        x[idx] = orig
        numeric = (up - down) / (2 * eps)
        assert abs(grad_x[idx] - numeric) < 5e-2


def test_stride_defaults_to_kernel():
    assert nn.MaxPool2D(2).stride == 2
    assert nn.MaxPool2D(3, stride=1).stride == 1


def test_invalid_configuration():
    with pytest.raises(ConfigurationError):
        nn.MaxPool2D(0)
    with pytest.raises(ConfigurationError):
        nn.AvgPool2D(2, stride=0)


def test_backward_before_forward_raises():
    pool = nn.MaxPool2D(2)
    with pytest.raises(ShapeError):
        pool.backward(np.zeros((1, 1, 2, 2), dtype=np.float32))


def test_non_nchw_input_rejected():
    with pytest.raises(ShapeError):
        nn.MaxPool2D(2).forward(np.zeros((4, 4), dtype=np.float32))
