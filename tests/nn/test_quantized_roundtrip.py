"""Save -> load -> quantize round-trip (serving deployment path).

A checkpoint written by one process and loaded into a freshly built
network in another must produce the *same* quantized model: identical
SHA-256 state digest, bit-exact int8 logits after calibration on the
same data, and therefore identical accuracy.  This is the contract the
serve.ModelStore weight_paths option depends on.
"""

import numpy as np
import pytest

from repro import core, nn
from repro.data import load_dataset
from tests.conftest import make_tiny_cnn


@pytest.fixture(scope="module")
def digits():
    return load_dataset("digits", n_train=96, n_test=48, seed=0)


@pytest.fixture(scope="module")
def trained_checkpoint(tmp_path_factory, digits):
    network = make_tiny_cnn(seed=5)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.05),
        batch_size=32,
    )
    trainer.fit(digits.train.images, digits.train.labels, epochs=1)
    path = str(tmp_path_factory.mktemp("ckpt") / "tiny.npz")
    nn.save_network_weights(network, path)
    return network, path


def test_digest_matches_after_reload(trained_checkpoint):
    source, path = trained_checkpoint
    restored = make_tiny_cnn(seed=11)  # different init, same topology
    assert nn.state_digest(restored) != nn.state_digest(source)
    nn.load_network_weights(restored, path)
    assert nn.state_digest(restored) == nn.state_digest(source)


def test_int8_logits_bit_exact_after_reload(trained_checkpoint, digits):
    source, path = trained_checkpoint
    restored = make_tiny_cnn(seed=11)
    nn.load_network_weights(restored, path)

    spec = core.get_precision("fixed8")
    q_source = core.QuantizedNetwork(source, spec)
    q_restored = core.QuantizedNetwork(restored, spec)
    q_source.calibrate(digits.train.images)
    q_restored.calibrate(digits.train.images)

    logits_source = q_source.predict(digits.test.images)
    logits_restored = q_restored.predict(digits.test.images)
    np.testing.assert_array_equal(logits_restored, logits_source)

    acc_source = q_source.evaluate(digits.test.images, digits.test.labels)
    acc_restored = q_restored.evaluate(digits.test.images, digits.test.labels)
    assert acc_restored == acc_source


def test_frozen_serving_path_matches_context_manager(trained_checkpoint, digits):
    """freeze() and the classic swap context agree bit-for-bit."""
    _, path = trained_checkpoint
    restored = make_tiny_cnn(seed=11)
    nn.load_network_weights(restored, path)
    qnet = core.QuantizedNetwork(restored, core.get_precision("fixed8"))
    qnet.calibrate(digits.train.images)

    expected = qnet.predict(digits.test.images)  # swap-in/restore path
    frozen = qnet.freeze()
    np.testing.assert_array_equal(frozen.predict(digits.test.images), expected)
    frozen.thaw()
