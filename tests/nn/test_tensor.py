"""Unit tests for the Parameter container."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.tensor import DTYPE, Parameter


def test_parameter_stores_float32():
    param = Parameter(np.arange(6, dtype=np.float64).reshape(2, 3))
    assert param.data.dtype == DTYPE
    assert param.shape == (2, 3)
    assert param.size == 6


def test_grad_starts_zero_and_matches_shape():
    param = Parameter(np.ones((3, 4)))
    assert param.grad.shape == (3, 4)
    assert np.all(param.grad == 0.0)


def test_accumulate_grad_adds():
    param = Parameter(np.zeros((2, 2)))
    param.accumulate_grad(np.ones((2, 2)))
    param.accumulate_grad(2 * np.ones((2, 2)))
    assert np.allclose(param.grad, 3.0)


def test_accumulate_grad_shape_mismatch_raises():
    param = Parameter(np.zeros((2, 2)))
    with pytest.raises(ShapeError):
        param.accumulate_grad(np.ones((2, 3)))


def test_zero_grad_clears():
    param = Parameter(np.zeros((2,)))
    param.accumulate_grad(np.ones((2,)))
    param.zero_grad()
    assert np.all(param.grad == 0.0)


def test_set_data_replaces_in_place():
    param = Parameter(np.zeros((2, 2)))
    view = param.data
    param.set_data(np.ones((2, 2)))
    assert np.all(view == 1.0), "set_data must write through the same array"


def test_set_data_shape_mismatch_raises():
    param = Parameter(np.zeros((2, 2)))
    with pytest.raises(ShapeError):
        param.set_data(np.zeros((3,)))


def test_copy_data_is_defensive():
    param = Parameter(np.zeros((2,)))
    copy = param.copy_data()
    copy[0] = 5.0
    assert param.data[0] == 0.0


def test_trainable_flag_default_true():
    assert Parameter(np.zeros(1)).trainable
    assert not Parameter(np.zeros(1), trainable=False).trainable
