"""SGD and learning-rate schedule tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.nn.tensor import Parameter


def make_param(value=1.0):
    return Parameter(np.array([value], dtype=np.float32), name="w")


def test_vanilla_sgd_step():
    param = make_param(1.0)
    opt = nn.SGD([param], lr=0.1, momentum=0.0)
    param.accumulate_grad(np.array([2.0], dtype=np.float32))
    opt.step()
    assert np.isclose(param.data[0], 1.0 - 0.1 * 2.0)


def test_momentum_accumulates_velocity():
    param = make_param(0.0)
    opt = nn.SGD([param], lr=0.1, momentum=0.5)
    for _ in range(2):
        param.zero_grad()
        param.accumulate_grad(np.array([1.0], dtype=np.float32))
        opt.step()
    # v1 = -0.1; w1 = -0.1; v2 = 0.5*(-0.1) - 0.1 = -0.15; w2 = -0.25
    assert np.isclose(param.data[0], -0.25)


def test_weight_decay_pulls_toward_zero():
    param = make_param(10.0)
    opt = nn.SGD([param], lr=0.1, momentum=0.0, weight_decay=0.1)
    param.zero_grad()
    opt.step()  # gradient is zero; decay still shrinks the weight
    assert param.data[0] < 10.0


def test_gradient_clipping_limits_norm():
    param = make_param(0.0)
    opt = nn.SGD([param], lr=1.0, momentum=0.0, grad_clip=1.0)
    param.accumulate_grad(np.array([100.0], dtype=np.float32))
    opt.step()
    assert np.isclose(param.data[0], -1.0)


def test_frozen_parameter_not_updated():
    param = make_param(1.0)
    param.trainable = False
    opt = nn.SGD([param], lr=0.1, momentum=0.0)
    param.accumulate_grad(np.array([1.0], dtype=np.float32))
    opt.step()
    assert param.data[0] == 1.0


def test_invalid_hyperparameters_rejected():
    param = make_param()
    with pytest.raises(ConfigurationError):
        nn.SGD([param], lr=0.1, momentum=1.5)
    with pytest.raises(ConfigurationError):
        nn.SGD([param], lr=0.1, weight_decay=-1.0)
    with pytest.raises(ConfigurationError):
        nn.SGD([], lr=0.1)
    with pytest.raises(ConfigurationError):
        nn.ConstantSchedule(0.0)


def test_step_decay_schedule():
    schedule = nn.StepDecay(1.0, step=2, gamma=0.1)
    assert schedule.rate(0) == 1.0
    assert schedule.rate(1) == 1.0
    assert np.isclose(schedule.rate(2), 0.1)
    assert np.isclose(schedule.rate(4), 0.01)


def test_exponential_decay_schedule():
    schedule = nn.ExponentialDecay(1.0, gamma=0.5)
    assert np.isclose(schedule.rate(3), 0.125)


def test_optimizer_uses_schedule():
    param = make_param(0.0)
    opt = nn.SGD([param], lr=nn.StepDecay(1.0, step=1, gamma=0.1), momentum=0.0)
    assert opt.current_lr == 1.0
    opt.set_epoch(1)
    assert np.isclose(opt.current_lr, 0.1)


def test_zero_grad_through_optimizer():
    param = make_param()
    opt = nn.SGD([param], lr=0.1)
    param.accumulate_grad(np.array([1.0], dtype=np.float32))
    opt.zero_grad()
    assert np.all(param.grad == 0)
