"""Metric function tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ShapeError


def test_accuracy_simple():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]], dtype=np.float32)
    labels = np.array([0, 1, 1])
    assert np.isclose(nn.accuracy(logits, labels), 2 / 3)


def test_accuracy_bounds():
    logits = np.eye(4, dtype=np.float32)
    assert nn.accuracy(logits, np.arange(4)) == 1.0
    assert nn.accuracy(logits, (np.arange(4) + 1) % 4) == 0.0


def test_accuracy_shape_validation():
    with pytest.raises(ShapeError):
        nn.accuracy(np.zeros((3,), dtype=np.float32), np.zeros(3, dtype=np.int64))


def test_top_k_accuracy():
    logits = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]], dtype=np.float32)
    labels = np.array([1, 0])
    assert nn.top_k_accuracy(logits, labels, k=1) == 0.0
    assert nn.top_k_accuracy(logits, labels, k=2) == 0.5
    assert nn.top_k_accuracy(logits, labels, k=3) == 1.0


def test_top_k_validation():
    with pytest.raises(ShapeError):
        nn.top_k_accuracy(np.zeros((2, 3), dtype=np.float32), np.zeros(2), k=4)


def test_confusion_matrix():
    logits = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.float32)
    labels = np.array([0, 1, 1])
    matrix = nn.confusion_matrix(logits, labels, num_classes=2)
    assert matrix[0, 0] == 1   # true 0 predicted 0
    assert matrix[1, 0] == 1   # true 1 predicted 0
    assert matrix[1, 1] == 1
    assert matrix.sum() == 3
