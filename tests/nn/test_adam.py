"""Adam optimizer tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.nn.tensor import Parameter


def make_param(value=0.0):
    return Parameter(np.array([value], dtype=np.float32), name="w")


def test_first_step_size_is_lr():
    """With bias correction, the first Adam step is ~lr * sign(grad)."""
    param = make_param(0.0)
    opt = nn.Adam([param], lr=0.1)
    param.accumulate_grad(np.array([3.0], dtype=np.float32))
    opt.step()
    assert np.isclose(param.data[0], -0.1, atol=1e-4)


def test_adaptive_scaling_equalizes_magnitudes():
    big = Parameter(np.array([0.0], dtype=np.float32), name="big")
    small = Parameter(np.array([0.0], dtype=np.float32), name="small")
    opt = nn.Adam([big, small], lr=0.01)
    big.accumulate_grad(np.array([100.0], dtype=np.float32))
    small.accumulate_grad(np.array([0.01], dtype=np.float32))
    opt.step()
    # per-parameter normalization: both take ~equal steps
    assert np.isclose(abs(big.data[0]), abs(small.data[0]), rtol=0.05)


def test_weight_decay_decoupled():
    param = make_param(10.0)
    opt = nn.Adam([param], lr=0.1, weight_decay=0.1)
    param.zero_grad()
    opt.step()
    assert param.data[0] < 10.0


def test_frozen_parameter_skipped():
    param = make_param(1.0)
    param.trainable = False
    opt = nn.Adam([param], lr=0.1)
    param.accumulate_grad(np.array([1.0], dtype=np.float32))
    opt.step()
    assert param.data[0] == 1.0


def test_validation():
    with pytest.raises(ConfigurationError):
        nn.Adam([], lr=0.1)
    with pytest.raises(ConfigurationError):
        nn.Adam([make_param()], beta1=1.0)
    with pytest.raises(ConfigurationError):
        nn.Adam([make_param()], epsilon=0.0)


def test_trains_a_small_network():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((60, 4)).astype(np.float32)
    y = (x[:, 0] - x[:, 2] > 0).astype(np.int64)
    gen = np.random.default_rng(1)
    net = nn.Sequential([nn.Dense(4, 8, rng=gen), nn.ReLU(), nn.Dense(8, 2, rng=gen)])
    trainer = nn.Trainer(net, nn.Adam(net.parameters(), lr=0.01), batch_size=16)
    trainer.fit(x, y, epochs=15)
    assert trainer.evaluate(x, y)["accuracy"] >= 0.9


def test_schedule_supported():
    param = make_param()
    opt = nn.Adam([param], lr=nn.StepDecay(0.1, step=1, gamma=0.5))
    assert opt.current_lr == 0.1
    opt.set_epoch(2)
    assert np.isclose(opt.current_lr, 0.025)
