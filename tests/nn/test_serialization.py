"""Weight save/load/transfer tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import SerializationError, ShapeError
from tests.conftest import make_tiny_cnn


def test_save_load_roundtrip(tmp_path, tiny_cnn):
    path = str(tmp_path / "weights.npz")
    nn.save_network_weights(tiny_cnn, path)
    other = make_tiny_cnn(seed=99)
    # seeds differ, so weights differ before loading
    assert not np.array_equal(
        other.parameters()[0].data, tiny_cnn.parameters()[0].data
    )
    nn.load_network_weights(other, path)
    for a, b in zip(tiny_cnn.parameters(), other.parameters()):
        assert np.array_equal(a.data, b.data)


def test_load_missing_parameter_raises(tmp_path):
    small = nn.Sequential([nn.Dense(3, 2, name="fc")])
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(small, path)
    bigger = nn.Sequential([nn.Dense(3, 2, name="fc"), nn.Dense(2, 2, name="fc2")])
    with pytest.raises(ShapeError):
        nn.load_network_weights(bigger, path)


def test_load_extra_parameter_raises(tmp_path):
    bigger = nn.Sequential([nn.Dense(3, 2, name="fc"), nn.Dense(2, 2, name="fc2")])
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(bigger, path)
    small = nn.Sequential([nn.Dense(3, 2, name="fc")])
    with pytest.raises(ShapeError):
        nn.load_network_weights(small, path)


def test_load_shape_mismatch_raises(tmp_path):
    a = nn.Sequential([nn.Dense(3, 2, name="fc")])
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(a, path)
    b = nn.Sequential([nn.Dense(3, 4, name="fc")])
    with pytest.raises(ShapeError):
        nn.load_network_weights(b, path)


def test_transfer_weights_between_identical_builds():
    a, b = make_tiny_cnn(seed=0), make_tiny_cnn(seed=42)
    nn.transfer_weights(a, b)
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert np.array_equal(pa.data, pb.data)
    # transfer copies, not aliases
    a.parameters()[0].data[...] += 1.0
    assert not np.array_equal(a.parameters()[0].data, b.parameters()[0].data)


def test_transfer_weights_mismatch_raises():
    a = nn.Sequential([nn.Dense(3, 2, name="fc")])
    b = nn.Sequential([nn.Dense(3, 2, name="other")])
    with pytest.raises(ShapeError):
        nn.transfer_weights(a, b)


def test_empty_network_round_trips(tmp_path):
    empty = nn.Sequential([nn.Flatten(name="flat")])  # no parameters
    assert nn.network_state(empty) == {}
    path = str(tmp_path / "empty.npz")
    nn.save_network_weights(empty, path)
    assert nn.read_state_archive(path) == {}
    nn.load_network_weights(empty, path)  # no-op, must not raise


def test_duplicate_layer_names_are_uniquified():
    net = nn.Sequential([nn.Dense(3, 3, name="fc"), nn.Dense(3, 2, name="fc")])
    names = [p.name for p in net.parameters()]
    assert len(set(names)) == len(names)  # "fc" -> "fc", "fc2"


def test_duplicate_parameter_names_raise_typed_error():
    # Sequential uniquifies layer names, so force a collision directly
    net = nn.Sequential([nn.Dense(3, 3, name="a"), nn.Dense(3, 2, name="b")])
    params = net.parameters()
    params[2].name = params[0].name
    with pytest.raises(ShapeError, match="duplicate parameter"):
        nn.network_state(net)


def test_corrupt_archive_raises_serialization_error(tmp_path):
    path = str(tmp_path / "w.npz")
    with open(path, "wb") as handle:
        handle.write(b"this is not an npz archive")
    with pytest.raises(SerializationError, match="corrupt or truncated"):
        nn.read_state_archive(path)


def test_truncated_archive_raises_serialization_error(tmp_path, tiny_cnn):
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(tiny_cnn, path)
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(SerializationError):
        nn.load_network_weights(make_tiny_cnn(), path)


def test_missing_file_still_raises_file_not_found(tmp_path):
    # callers legitimately treat "nothing saved yet" differently from
    # "saved but damaged", so FileNotFoundError passes through untyped
    with pytest.raises(FileNotFoundError):
        nn.read_state_archive(str(tmp_path / "absent.npz"))


def test_state_archive_round_trip_preserves_exact_bytes(tmp_path, tiny_cnn):
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(tiny_cnn, path)
    state = nn.read_state_archive(path)
    original = nn.network_state(tiny_cnn)
    assert sorted(state) == sorted(original)
    for name in original:
        np.testing.assert_array_equal(state[name], original[name])
        assert state[name].dtype == original[name].dtype
    assert nn.state_dict_digest(state) == nn.state_digest(tiny_cnn)


def test_state_dict_digest_is_order_independent_and_content_sensitive():
    state = {"a": np.ones((2, 2), np.float32),
             "b": np.zeros(3, np.float32)}
    reordered = {"b": state["b"].copy(), "a": state["a"].copy()}
    assert nn.state_dict_digest(state) == nn.state_dict_digest(reordered)

    flipped = {"a": state["a"].copy(), "b": state["b"].copy()}
    flipped["b"][0] = 1.0
    assert nn.state_dict_digest(flipped) != nn.state_dict_digest(state)

    # shape participates even when the bytes are identical
    flat = {"a": state["a"].reshape(4), "b": state["b"]}
    assert nn.state_dict_digest(flat) != nn.state_dict_digest(state)
