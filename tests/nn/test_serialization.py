"""Weight save/load/transfer tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ShapeError
from tests.conftest import make_tiny_cnn


def test_save_load_roundtrip(tmp_path, tiny_cnn):
    path = str(tmp_path / "weights.npz")
    nn.save_network_weights(tiny_cnn, path)
    other = make_tiny_cnn(seed=99)
    # seeds differ, so weights differ before loading
    assert not np.array_equal(
        other.parameters()[0].data, tiny_cnn.parameters()[0].data
    )
    nn.load_network_weights(other, path)
    for a, b in zip(tiny_cnn.parameters(), other.parameters()):
        assert np.array_equal(a.data, b.data)


def test_load_missing_parameter_raises(tmp_path):
    small = nn.Sequential([nn.Dense(3, 2, name="fc")])
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(small, path)
    bigger = nn.Sequential([nn.Dense(3, 2, name="fc"), nn.Dense(2, 2, name="fc2")])
    with pytest.raises(ShapeError):
        nn.load_network_weights(bigger, path)


def test_load_extra_parameter_raises(tmp_path):
    bigger = nn.Sequential([nn.Dense(3, 2, name="fc"), nn.Dense(2, 2, name="fc2")])
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(bigger, path)
    small = nn.Sequential([nn.Dense(3, 2, name="fc")])
    with pytest.raises(ShapeError):
        nn.load_network_weights(small, path)


def test_load_shape_mismatch_raises(tmp_path):
    a = nn.Sequential([nn.Dense(3, 2, name="fc")])
    path = str(tmp_path / "w.npz")
    nn.save_network_weights(a, path)
    b = nn.Sequential([nn.Dense(3, 4, name="fc")])
    with pytest.raises(ShapeError):
        nn.load_network_weights(b, path)


def test_transfer_weights_between_identical_builds():
    a, b = make_tiny_cnn(seed=0), make_tiny_cnn(seed=42)
    nn.transfer_weights(a, b)
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert np.array_equal(pa.data, pb.data)
    # transfer copies, not aliases
    a.parameters()[0].data[...] += 1.0
    assert not np.array_equal(a.parameters()[0].data, b.parameters()[0].data)


def test_transfer_weights_mismatch_raises():
    a = nn.Sequential([nn.Dense(3, 2, name="fc")])
    b = nn.Sequential([nn.Dense(3, 2, name="other")])
    with pytest.raises(ShapeError):
        nn.transfer_weights(a, b)
