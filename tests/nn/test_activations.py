"""Activation layer values and gradients."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def test_relu_values():
    relu = nn.ReLU()
    x = np.array([[-2.0, 0.0, 3.0]], dtype=np.float32)
    assert np.array_equal(relu.forward(x), [[0.0, 0.0, 3.0]])


def test_relu_gradient_mask():
    relu = nn.ReLU()
    x = np.array([[-1.0, 2.0]], dtype=np.float32)
    relu.forward(x)
    grad = relu.backward(np.array([[5.0, 7.0]], dtype=np.float32))
    assert np.array_equal(grad, [[0.0, 7.0]])


def test_leaky_relu_values_and_grad():
    leaky = nn.LeakyReLU(0.1)
    x = np.array([[-2.0, 4.0]], dtype=np.float32)
    out = leaky.forward(x)
    assert np.allclose(out, [[-0.2, 4.0]])
    grad = leaky.backward(np.ones_like(x))
    assert np.allclose(grad, [[0.1, 1.0]])


def test_leaky_relu_invalid_slope():
    with pytest.raises(ConfigurationError):
        nn.LeakyReLU(-0.1)


def test_sigmoid_values():
    sig = nn.Sigmoid()
    out = sig.forward(np.array([[0.0]], dtype=np.float32))
    assert np.isclose(out[0, 0], 0.5)


def test_sigmoid_saturates_without_overflow():
    sig = nn.Sigmoid()
    out = sig.forward(np.array([[1000.0, -1000.0]], dtype=np.float32))
    assert np.isclose(out[0, 0], 1.0)
    assert np.isclose(out[0, 1], 0.0)


def test_sigmoid_gradient():
    sig = nn.Sigmoid()
    x = np.array([[0.3]], dtype=np.float32)
    out = sig.forward(x)
    grad = sig.backward(np.ones_like(x))
    assert np.isclose(grad[0, 0], out[0, 0] * (1 - out[0, 0]))


def test_tanh_gradient_numerically():
    rng = np.random.default_rng(0)
    net = nn.Sequential([nn.Dense(3, 3, rng=rng), nn.Tanh()])
    x = rng.standard_normal((2, 3)).astype(np.float32)
    y = rng.standard_normal((2, 3)).astype(np.float32)
    errors = nn.check_gradients(net, nn.MeanSquaredError(), x, y)
    assert max(errors.values()) < 1e-2


@pytest.mark.parametrize("cls", [nn.ReLU, nn.Sigmoid, nn.Tanh])
def test_backward_before_forward_raises(cls):
    with pytest.raises(ShapeError):
        cls().backward(np.ones((1, 2), dtype=np.float32))


@pytest.mark.parametrize("cls", [nn.ReLU, nn.LeakyReLU, nn.Sigmoid, nn.Tanh])
def test_output_shape_passthrough(cls):
    assert cls().output_shape((3, 4, 4)) == (3, 4, 4)
