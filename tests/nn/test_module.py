"""Module base class tests."""

import numpy as np

from repro import nn
from repro.nn.module import Module, set_mode
from repro.nn.tensor import Parameter


class Doubler(Module):
    """Trivial module for exercising the base-class machinery."""

    def __init__(self):
        super().__init__(name="doubler")
        self.scale = self.register_parameter(
            Parameter(np.array([2.0], dtype=np.float32), name="doubler.scale")
        )

    def forward(self, x):
        return x * self.scale.data

    def backward(self, grad_out):
        return grad_out * self.scale.data

    def output_shape(self, input_shape):
        return input_shape


def test_default_name_is_lowercase_class():
    assert Doubler().name == "doubler"


def test_register_and_enumerate_parameters():
    module = Doubler()
    assert module.parameters() == [module.scale]
    assert module.parameter_count() == 1


def test_weight_parameters_default_empty():
    assert Doubler().weight_parameters() == []


def test_zero_grad():
    module = Doubler()
    module.scale.accumulate_grad(np.array([5.0], dtype=np.float32))
    module.zero_grad()
    assert np.all(module.scale.grad == 0)


def test_train_eval_toggles():
    module = Doubler()
    assert module.training
    module.eval_mode()
    assert not module.training
    module.train_mode()
    assert module.training


def test_set_mode_helper():
    modules = [Doubler(), nn.ReLU(), nn.Flatten()]
    set_mode(modules, training=False)
    assert all(not m.training for m in modules)
    set_mode(modules, training=True)
    assert all(m.training for m in modules)


def test_call_invokes_forward():
    module = Doubler()
    out = module(np.array([3.0], dtype=np.float32))
    assert out[0] == 6.0
