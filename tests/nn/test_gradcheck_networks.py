"""End-to-end gradient checks through complete small networks.

These validate that every layer type composes correctly in backprop —
the strongest single guarantee the numpy framework offers.
"""

import numpy as np
import pytest

from repro import nn


def check(net, input_shape, num_classes=3, seed=0, tolerance=2e-2):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((2,) + input_shape).astype(np.float32)
    y = rng.integers(0, num_classes, size=2)
    errors = nn.check_gradients(net, nn.SoftmaxCrossEntropy(), x, y,
                                tolerance=tolerance)
    return errors


def test_conv_maxpool_dense_stack():
    gen = np.random.default_rng(0)
    net = nn.Sequential([
        nn.Conv2D(1, 2, 3, rng=gen),
        nn.ReLU(),
        nn.MaxPool2D(2),
        nn.Flatten(),
        nn.Dense(2 * 3 * 3, 3, rng=gen),
    ])
    check(net, (1, 8, 8))


def test_conv_avgpool_stack():
    gen = np.random.default_rng(1)
    net = nn.Sequential([
        nn.Conv2D(1, 2, 3, padding=1, rng=gen),
        nn.Tanh(),
        nn.AvgPool2D(3, stride=2),
        nn.Flatten(),
        nn.Dense(2 * 4 * 4, 3, rng=gen),
    ])
    check(net, (1, 8, 8))


def test_strided_padded_conv_stack():
    gen = np.random.default_rng(2)
    net = nn.Sequential([
        nn.Conv2D(2, 3, 3, stride=2, padding=1, rng=gen),
        nn.LeakyReLU(0.1),
        nn.Flatten(),
        nn.Dense(3 * 4 * 4, 3, rng=gen),
    ])
    check(net, (2, 7, 7))


def test_deep_mlp():
    gen = np.random.default_rng(3)
    net = nn.Sequential([
        nn.Dense(5, 7, rng=gen),
        nn.Sigmoid(),
        nn.Dense(7, 6, rng=gen),
        nn.ReLU(),
        nn.Dense(6, 3, rng=gen),
    ])
    check(net, (5,))


def test_ceil_mode_pooling_stack():
    """Partial edge windows must backpropagate correctly too."""
    gen = np.random.default_rng(4)
    net = nn.Sequential([
        nn.Conv2D(1, 2, 3, padding=1, rng=gen),
        nn.ReLU(),
        nn.MaxPool2D(2, stride=2),  # 7 -> 4 via ceil mode (partial windows)
        nn.Flatten(),
        nn.Dense(2 * 4 * 4, 3, rng=gen),
    ])
    check(net, (1, 7, 7))
