"""Weight initializer tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.initializers import (
    _fans,
    get_initializer,
    glorot_uniform,
    he_normal,
    zeros,
)


def test_fans_dense():
    assert _fans((100, 50)) == (100, 50)


def test_fans_conv():
    # (out_c, in_c, k, k): fan_in = in_c*k*k, fan_out = out_c*k*k
    assert _fans((32, 16, 3, 3)) == (16 * 9, 32 * 9)


def test_fans_invalid_shape():
    with pytest.raises(ConfigurationError):
        _fans((4,))


def test_glorot_bounds():
    rng = np.random.default_rng(0)
    w = glorot_uniform((64, 64), rng)
    limit = np.sqrt(6.0 / 128)
    assert w.min() >= -limit and w.max() <= limit
    assert w.dtype == np.float32


def test_he_std():
    rng = np.random.default_rng(0)
    w = he_normal((1000, 100), rng)
    expected_std = np.sqrt(2.0 / 1000)
    assert np.isclose(w.std(), expected_std, rtol=0.1)
    assert np.isclose(w.mean(), 0.0, atol=expected_std / 10)


def test_initializers_deterministic_per_seed():
    a = he_normal((8, 8), np.random.default_rng(1))
    b = he_normal((8, 8), np.random.default_rng(1))
    assert np.array_equal(a, b)


def test_zeros():
    z = zeros((3, 2))
    assert np.all(z == 0) and z.dtype == np.float32


def test_get_initializer_lookup():
    assert get_initializer("he") is he_normal
    assert get_initializer("glorot") is glorot_uniform
    with pytest.raises(ConfigurationError):
        get_initializer("orthogonal")
