"""im2col / col2im correctness against naive reference implementations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.im2col import col2im, conv_output_size, im2col


def naive_im2col(x, kernel, stride, padding):
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.zeros((c * kernel * kernel, n * out_h * out_w), dtype=x.dtype)
    col = 0
    for i in range(out_h):
        for j in range(out_w):
            for b in range(n):
                patch = x_pad[b, :, i * stride : i * stride + kernel,
                              j * stride : j * stride + kernel]
                # column order must match the vectorized implementation:
                # batch-major within each output position
                cols[:, i * out_w * n + j * n + b] = patch.reshape(-1)
            col += n
    return cols


def test_conv_output_size_floor_mode():
    assert conv_output_size(28, 5, 1, 0) == 24
    assert conv_output_size(28, 5, 1, 2) == 28
    assert conv_output_size(32, 3, 2, 0) == 15


def test_conv_output_size_ceil_mode_matches_caffe():
    # ALEX pooling: 32 -> 16 -> 8 -> 4 with 3x3 stride-2 ceil pooling
    assert conv_output_size(32, 3, 2, 0, ceil_mode=True) == 16
    assert conv_output_size(16, 3, 2, 0, ceil_mode=True) == 8
    assert conv_output_size(8, 3, 2, 0, ceil_mode=True) == 4


def test_conv_output_size_rejects_oversized_kernel():
    with pytest.raises(ShapeError):
        conv_output_size(4, 7, 1, 0)


def test_im2col_matches_naive():
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
    got = im2col(x, kernel=3, stride=2, padding=1)
    want = naive_im2col(x, kernel=3, stride=2, padding=1)
    assert got.shape == want.shape
    assert np.allclose(got, want)


def test_im2col_identity_kernel_one():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
    cols = im2col(x, kernel=1, stride=1, padding=0)
    assert cols.shape == (2, 16)
    assert np.allclose(cols.reshape(2, 4, 4), x[0])


def test_col2im_is_adjoint_of_im2col():
    """<im2col(x), c> == <x, col2im(c)> (gather/scatter-add adjointness)."""
    rng = np.random.default_rng(2)
    x = rng.standard_normal((2, 2, 6, 6)).astype(np.float64)
    cols = im2col(x, kernel=3, stride=2, padding=1)
    c = rng.standard_normal(cols.shape)
    lhs = np.sum(cols * c)
    rhs = np.sum(x * col2im(c, x.shape, kernel=3, stride=2, padding=1))
    assert np.isclose(lhs, rhs, rtol=1e-10)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(4, 10),
    kernel=st.integers(1, 4),
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
)
def test_im2col_col2im_shapes_property(n, c, size, kernel, stride, padding):
    if size + 2 * padding < kernel:
        return
    x = np.ones((n, c, size, size), dtype=np.float32)
    cols = im2col(x, kernel, stride, padding)
    out_h = conv_output_size(size, kernel, stride, padding)
    out_w = conv_output_size(size, kernel, stride, padding)
    assert cols.shape == (c * kernel * kernel, n * out_h * out_w)
    back = col2im(cols, x.shape, kernel, stride, padding)
    assert back.shape == x.shape
    # every pixel is counted at most kernel^2 times, at least 0
    assert back.max() <= kernel * kernel + 1e-6
    assert back.min() >= 0.0
