"""Conv2D correctness: forward vs scipy, gradients, shapes, MACs."""

import numpy as np
import pytest
from scipy import signal

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def reference_conv(x, weight, bias, stride, padding):
    """Direct cross-correlation using scipy, per batch/channel."""
    n, in_c, h, w = x.shape
    out_c = weight.shape[0]
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    k = weight.shape[2]
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (w + 2 * padding - k) // stride + 1
    out = np.zeros((n, out_c, out_h, out_w), dtype=np.float64)
    for b in range(n):
        for oc in range(out_c):
            acc = np.zeros((h + 2 * padding - k + 1, w + 2 * padding - k + 1))
            for ic in range(in_c):
                acc += signal.correlate2d(
                    x_pad[b, ic].astype(np.float64),
                    weight[oc, ic].astype(np.float64),
                    mode="valid",
                )
            out[b, oc] = acc[::stride, ::stride] + bias[oc]
    return out


@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 2), (2, 1), (3, 0)])
def test_forward_matches_scipy(stride, padding):
    rng = np.random.default_rng(0)
    conv = nn.Conv2D(3, 5, kernel_size=3, stride=stride, padding=padding, rng=rng)
    conv.bias.set_data(rng.standard_normal(5))
    x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
    got = conv.forward(x)
    want = reference_conv(x, conv.weight.data, conv.bias.data, stride, padding)
    assert got.shape == want.shape
    assert np.allclose(got, want, atol=1e-4)


def test_forward_without_bias():
    rng = np.random.default_rng(1)
    conv = nn.Conv2D(2, 3, kernel_size=3, use_bias=False, rng=rng)
    assert conv.bias is None
    x = rng.standard_normal((1, 2, 5, 5)).astype(np.float32)
    want = reference_conv(x, conv.weight.data, np.zeros(3), 1, 0)
    assert np.allclose(conv.forward(x), want, atol=1e-4)


def test_gradients_numerically():
    rng = np.random.default_rng(2)
    net = nn.Sequential([nn.Conv2D(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)])
    x = rng.standard_normal((2, 2, 6, 6)).astype(np.float32)
    y = rng.standard_normal(net.forward(x).shape).astype(np.float32)
    errors = nn.check_gradients(net, nn.MeanSquaredError(), x, y)
    assert max(errors.values()) < 1e-2


def test_input_gradient_numerically():
    rng = np.random.default_rng(3)
    conv = nn.Conv2D(1, 2, kernel_size=3, rng=rng)
    x = rng.standard_normal((1, 1, 5, 5)).astype(np.float64)

    def loss_of(x_input):
        out = conv.forward(x_input.astype(np.float32))
        return float(np.sum(out**2))

    out = conv.forward(x.astype(np.float32))
    grad_x = conv.backward(2.0 * out)
    eps = 1e-3
    numeric = np.zeros_like(x)
    flat = x.reshape(-1)
    num_flat = numeric.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = loss_of(x)
        flat[i] = orig - eps
        down = loss_of(x)
        flat[i] = orig
        num_flat[i] = (up - down) / (2 * eps)
    assert np.allclose(grad_x, numeric, atol=1e-2)


def test_output_shape_and_macs():
    conv = nn.Conv2D(3, 32, kernel_size=5, padding=2)
    assert conv.output_shape((3, 32, 32)) == (32, 32, 32)
    assert conv.macs((3, 32, 32)) == 32 * 32 * 32 * 3 * 5 * 5


def test_shape_validation():
    conv = nn.Conv2D(3, 4, kernel_size=3)
    with pytest.raises(ShapeError):
        conv.forward(np.zeros((1, 2, 8, 8), dtype=np.float32))
    with pytest.raises(ShapeError):
        conv.output_shape((2, 8, 8))
    with pytest.raises(ShapeError):
        conv.backward(np.zeros((1, 4, 6, 6), dtype=np.float32))


def test_invalid_configuration_rejected():
    with pytest.raises(ConfigurationError):
        nn.Conv2D(0, 4, kernel_size=3)
    with pytest.raises(ConfigurationError):
        nn.Conv2D(1, 4, kernel_size=3, padding=-1)


def test_eval_mode_does_not_cache():
    conv = nn.Conv2D(1, 2, kernel_size=3)
    conv.eval_mode()
    conv.forward(np.zeros((1, 1, 5, 5), dtype=np.float32))
    with pytest.raises(ShapeError):
        conv.backward(np.zeros((1, 2, 3, 3), dtype=np.float32))
