"""Trainer works with the Adam optimizer (duck-typed optimizer API)."""

import numpy as np

from repro import core, nn
from repro.data import load_dataset
from tests.conftest import make_tiny_cnn


def test_trainer_accepts_adam():
    split = load_dataset("digits", n_train=200, n_test=100, seed=0)
    net = make_tiny_cnn(seed=4)
    trainer = nn.Trainer(
        net, nn.Adam(net.parameters(), lr=5e-3),
        batch_size=32, rng=np.random.default_rng(0),
    )
    history = trainer.fit(split.train.images, split.train.labels, epochs=3)
    assert history.train_accuracy[-1] > 0.6


def test_qat_with_adam_mechanics():
    """Adam-based QAT runs end to end: the optimizer duck-types into
    the trainer, the shadow stays full precision, weights stay finite.

    (On this tiny warm-started setup Adam's per-parameter rescaling
    amplifies the straight-through gradients and churns binary signs,
    so unlike the SGD path no accuracy claim is made — that behaviour
    is why the sweeps fine-tune with small-LR SGD.)
    """
    split = load_dataset("digits", n_train=200, n_test=100, seed=0)
    net = make_tiny_cnn(seed=4)
    float_trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    float_trainer.fit(split.train.images, split.train.labels, epochs=3)

    qnet = core.QuantizedNetwork(net, core.get_precision("fixed8"))
    qnet.calibrate(split.train.images[:64])
    qat = core.QATTrainer(
        qnet, nn.Adam(net.parameters(), lr=1e-4),
        batch_size=32, rng=np.random.default_rng(1),
    )
    qat.fit(split.train.images, split.train.labels, epochs=1)
    for param in net.parameters():
        assert np.all(np.isfinite(param.data))
    # 8-bit QAT with a gentle Adam keeps the warm-started accuracy
    accuracy = qnet.evaluate(split.test.images, split.test.labels)
    assert accuracy > 0.6
