"""Dropout tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def test_eval_mode_is_identity():
    drop = nn.Dropout(0.5)
    drop.eval_mode()
    x = np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32)
    assert np.array_equal(drop.forward(x), x)


def test_training_zeroes_and_rescales():
    drop = nn.Dropout(0.5, rng=np.random.default_rng(1))
    x = np.ones((1000,), dtype=np.float32)
    out = drop.forward(x)
    zero_fraction = float(np.mean(out == 0))
    assert 0.4 < zero_fraction < 0.6
    survivors = out[out != 0]
    assert np.allclose(survivors, 2.0)  # inverted scaling 1/(1-0.5)


def test_expected_value_preserved():
    drop = nn.Dropout(0.3, rng=np.random.default_rng(2))
    x = np.ones((20000,), dtype=np.float32)
    out = drop.forward(x)
    assert np.isclose(out.mean(), 1.0, atol=0.03)


def test_backward_uses_same_mask():
    drop = nn.Dropout(0.5, rng=np.random.default_rng(3))
    x = np.ones((100,), dtype=np.float32)
    out = drop.forward(x)
    grad = drop.backward(np.ones_like(x))
    assert np.array_equal(grad == 0, out == 0)


def test_zero_rate_identity_in_training():
    drop = nn.Dropout(0.0)
    x = np.random.default_rng(4).standard_normal((8,)).astype(np.float32)
    assert np.array_equal(drop.forward(x), x)
    assert np.array_equal(drop.backward(x), x)


def test_backward_before_forward_raises():
    drop = nn.Dropout(0.5)
    with pytest.raises(ShapeError):
        drop.backward(np.ones((4,), dtype=np.float32))


def test_invalid_rate():
    with pytest.raises(ConfigurationError):
        nn.Dropout(1.0)
    with pytest.raises(ConfigurationError):
        nn.Dropout(-0.1)


def test_output_shape():
    assert nn.Dropout(0.5).output_shape((3, 4)) == (3, 4)
