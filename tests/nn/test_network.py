"""Sequential container tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from tests.conftest import make_tiny_cnn


def test_forward_backward_shapes(tiny_cnn):
    x = np.random.default_rng(0).standard_normal((3, 1, 28, 28)).astype(np.float32)
    out = tiny_cnn.forward(x)
    assert out.shape == (3, 10)
    grad_in = tiny_cnn.backward(np.ones_like(out))
    assert grad_in.shape == x.shape


def test_output_shape_trace(tiny_cnn):
    assert tiny_cnn.output_shape((1, 28, 28)) == (10,)
    shapes = tiny_cnn.layer_shapes((1, 28, 28))
    assert shapes[0] == ((1, 28, 28), (4, 24, 24))
    assert shapes[-1] == ((128,), (10,))


def test_parameters_aggregated(tiny_cnn):
    # conv1 w+b, conv2 w+b, dense w+b
    assert len(tiny_cnn.parameters()) == 6
    assert len(tiny_cnn.weight_parameters()) == 3


def test_parameter_count(tiny_cnn):
    expected = (4 * 1 * 25 + 4) + (8 * 4 * 25 + 8) + (128 * 10 + 10)
    assert tiny_cnn.parameter_count() == expected


def test_duplicate_layer_names_disambiguated():
    net = nn.Sequential([nn.ReLU(), nn.ReLU(), nn.ReLU()])
    names = [layer.name for layer in net.layers]
    assert len(set(names)) == 3


def test_duplicate_parameter_names_disambiguated():
    gen = np.random.default_rng(0)
    net = nn.Sequential(
        [nn.Dense(4, 4, name="fc", rng=gen), nn.Dense(4, 4, name="fc", rng=gen)]
    )
    param_names = [p.name for p in net.parameters()]
    assert len(set(param_names)) == len(param_names)


def test_empty_network_rejected():
    with pytest.raises(ConfigurationError):
        nn.Sequential([])


def test_train_eval_mode_propagates(tiny_cnn):
    tiny_cnn.eval_mode()
    assert all(not layer.training for layer in tiny_cnn.layers)
    tiny_cnn.train_mode()
    assert all(layer.training for layer in tiny_cnn.layers)


def test_predict_batched_matches_single_pass(tiny_cnn):
    x = np.random.default_rng(1).standard_normal((10, 1, 28, 28)).astype(np.float32)
    tiny_cnn.eval_mode()
    full = tiny_cnn.forward(x)
    batched = tiny_cnn.predict(x, batch_size=3)
    assert np.allclose(full, batched, atol=1e-5)


def test_predict_restores_training_mode(tiny_cnn):
    tiny_cnn.train_mode()
    tiny_cnn.predict(np.zeros((2, 1, 28, 28), dtype=np.float32))
    assert tiny_cnn.training


def test_zero_grad_clears_all(tiny_cnn):
    x = np.zeros((2, 1, 28, 28), dtype=np.float32)
    out = tiny_cnn.forward(x)
    tiny_cnn.backward(np.ones_like(out))
    tiny_cnn.zero_grad()
    assert all(np.all(p.grad == 0) for p in tiny_cnn.parameters())


def test_compute_layers_only_macs(tiny_cnn):
    compute = list(tiny_cnn.compute_layers())
    assert [layer.name for layer in compute] == ["conv1", "conv2", "ip1"]


def test_summary_mentions_every_layer(tiny_cnn):
    text = tiny_cnn.summary((1, 28, 28))
    for layer in tiny_cnn.layers:
        assert layer.name in text
    assert str(tiny_cnn.parameter_count()) in text


def test_fresh_builds_are_identical():
    a, b = make_tiny_cnn(seed=3), make_tiny_cnn(seed=3)
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert np.array_equal(pa.data, pb.data)
