"""Batch normalization tests."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError, ShapeError


def test_training_output_normalized_2d():
    rng = np.random.default_rng(0)
    bn = nn.BatchNorm(4)
    x = (rng.standard_normal((64, 4)) * 5 + 3).astype(np.float32)
    out = bn.forward(x)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-4)
    assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_training_output_normalized_4d():
    rng = np.random.default_rng(1)
    bn = nn.BatchNorm(3)
    x = (rng.standard_normal((8, 3, 5, 5)) * 2 - 1).astype(np.float32)
    out = bn.forward(x)
    assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)


def test_gamma_beta_affect_output():
    bn = nn.BatchNorm(2)
    bn.gamma.set_data(np.array([2.0, 1.0], dtype=np.float32))
    bn.beta.set_data(np.array([0.0, 5.0], dtype=np.float32))
    x = np.random.default_rng(2).standard_normal((32, 2)).astype(np.float32)
    out = bn.forward(x)
    assert np.isclose(out[:, 0].std(), 2.0, atol=0.05)
    assert np.isclose(out[:, 1].mean(), 5.0, atol=1e-4)


def test_eval_uses_running_statistics():
    rng = np.random.default_rng(3)
    bn = nn.BatchNorm(2, momentum=0.0)  # running stats = last batch
    x = (rng.standard_normal((128, 2)) * 3 + 1).astype(np.float32)
    bn.forward(x)
    bn.eval_mode()
    # a wildly different input must be normalized by the stored stats
    y = np.zeros((4, 2), dtype=np.float32)
    out = bn.forward(y)
    expected = (0.0 - bn.running_mean) / np.sqrt(bn.running_var + bn.epsilon)
    assert np.allclose(out, expected[None, :], atol=1e-4)


def test_running_stats_updated_only_in_training():
    bn = nn.BatchNorm(2)
    bn.eval_mode()
    before = bn.running_mean.copy()
    bn.forward(np.ones((8, 2), dtype=np.float32) * 7)
    assert np.array_equal(bn.running_mean, before)


def test_gradients_numerically():
    # bias before BatchNorm is a null direction (BN subtracts the mean),
    # so the layers feeding BN are built bias-free, as real nets do.
    gen = np.random.default_rng(4)
    net = nn.Sequential([
        nn.Dense(5, 4, rng=gen, use_bias=False),
        nn.BatchNorm(4),
        nn.ReLU(),
        nn.Dense(4, 3, rng=gen),
    ])
    x = gen.standard_normal((6, 5)).astype(np.float32)
    y = gen.integers(0, 3, size=6)
    errors = nn.check_gradients(net, nn.SoftmaxCrossEntropy(), x, y, tolerance=3e-2)
    assert max(errors.values()) < 3e-2


def test_conv_batchnorm_stack_gradients():
    gen = np.random.default_rng(5)
    net = nn.Sequential([
        nn.Conv2D(1, 2, 3, rng=gen, use_bias=False),
        nn.BatchNorm(2),
        nn.ReLU(),
        nn.Flatten(),
        nn.Dense(2 * 4 * 4, 3, rng=gen),
    ])
    x = gen.standard_normal((4, 1, 6, 6)).astype(np.float32)
    y = gen.integers(0, 3, size=4)
    errors = nn.check_gradients(net, nn.SoftmaxCrossEntropy(), x, y, tolerance=3e-2)
    assert max(errors.values()) < 3e-2


def test_shape_validation():
    bn = nn.BatchNorm(3)
    with pytest.raises(ShapeError):
        bn.forward(np.zeros((4, 2), dtype=np.float32))
    with pytest.raises(ShapeError):
        bn.forward(np.zeros((4, 2, 3, 3), dtype=np.float32))
    with pytest.raises(ShapeError):
        bn.forward(np.zeros((4,), dtype=np.float32))
    with pytest.raises(ShapeError):
        bn.backward(np.zeros((4, 3), dtype=np.float32))


def test_invalid_configuration():
    with pytest.raises(ConfigurationError):
        nn.BatchNorm(0)
    with pytest.raises(ConfigurationError):
        nn.BatchNorm(4, momentum=1.0)
    with pytest.raises(ConfigurationError):
        nn.BatchNorm(4, epsilon=0.0)


def test_parameters_registered():
    bn = nn.BatchNorm(4)
    assert len(bn.parameters()) == 2
    assert bn.output_shape((4, 8, 8)) == (4, 8, 8)
