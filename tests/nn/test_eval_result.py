"""EvalResult: float compatibility and mapping protocol."""

import warnings

import numpy as np
import pytest

from repro.nn import EvalResult, SGD, Trainer
from tests.conftest import make_tiny_cnn


def test_behaves_like_the_accuracy_float():
    result = EvalResult(0.875, loss=0.4, n_samples=64, elapsed_s=0.01)
    assert result == 0.875
    assert result >= 0.5
    assert 100 * result == 87.5
    assert f"{result:.2f}" == "0.88"
    assert result == pytest.approx(0.875)
    assert isinstance(result, float)


def test_mapping_protocol():
    result = EvalResult(0.9, loss=0.2, n_samples=10, elapsed_s=1.5)
    assert result["accuracy"] == 0.9
    assert result["loss"] == 0.2
    assert result["n_samples"] == 10
    assert result["elapsed_s"] == 1.5
    assert set(result.keys()) == {"accuracy", "loss", "n_samples", "elapsed_s"}
    assert dict(result.items())["loss"] == 0.2
    assert "accuracy" in result and "flops" not in result
    assert result.get("missing", -1) == -1
    with pytest.raises(KeyError):
        result["missing"]
    assert result.as_dict() == {
        "accuracy": 0.9, "loss": 0.2, "n_samples": 10, "elapsed_s": 1.5,
    }


def test_defaults_and_repr():
    result = EvalResult(0.5)
    assert np.isnan(result["loss"])
    assert result["n_samples"] == 0
    assert "accuracy=0.5000" in repr(result)


def test_float_conversion_is_silent():
    result = EvalResult(0.75)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert float(result) == 0.75
        assert type(float(result)) is float
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]


def test_trainer_evaluate_returns_eval_result(tiny_digits):
    network = make_tiny_cnn()
    trainer = Trainer(
        network,
        SGD(network.parameters(), lr=0.01),
        rng=np.random.default_rng(0),
    )
    result = trainer.evaluate(tiny_digits.test.images, tiny_digits.test.labels)
    assert isinstance(result, EvalResult)
    assert result["n_samples"] == len(tiny_digits.test.labels)
    assert result["elapsed_s"] > 0.0
    assert np.isfinite(result["loss"])
    # the old dict-style call sites keep working
    assert 0.0 <= result["accuracy"] <= 1.0
    assert result["accuracy"] == result.accuracy == result


def test_quantized_evaluate_returns_eval_result(tiny_digits):
    from repro.core import QuantizedNetwork

    network = make_tiny_cnn()
    qnet = QuantizedNetwork(network, "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    result = qnet.evaluate(tiny_digits.test.images, tiny_digits.test.labels)
    assert isinstance(result, EvalResult)
    assert result["n_samples"] == len(tiny_digits.test.labels)
    assert np.isnan(result["loss"])  # quantized eval reports no loss

    frozen = qnet.freeze()
    try:
        frozen_result = frozen.evaluate(
            tiny_digits.test.images, tiny_digits.test.labels
        )
        assert isinstance(frozen_result, EvalResult)
        assert frozen_result.accuracy == result.accuracy
    finally:
        frozen.thaw()
