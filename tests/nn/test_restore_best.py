"""Best-epoch weight restoration tests."""

import numpy as np

from repro import nn


def linearly_separable(n=60, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4)).astype(np.float32)
    return x, (x[:, 0] > 0).astype(np.int64)


def make_net(seed=0):
    gen = np.random.default_rng(seed)
    return nn.Sequential([nn.Dense(4, 8, rng=gen), nn.ReLU(), nn.Dense(8, 2, rng=gen)])


def test_restore_best_returns_best_epoch_weights():
    """With a destructive LR spike late in training, restore_best must
    hand back the earlier, better weights."""
    x, y = linearly_separable()
    net = make_net()
    # schedule: normal then absurd — late epochs destroy the model
    class SpikeSchedule(nn.LRSchedule):
        def rate(self, epoch):
            return 0.05 if epoch < 5 else 50.0

    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=SpikeSchedule(), momentum=0.0),
        batch_size=16, rng=np.random.default_rng(0), restore_best=True,
    )
    try:
        trainer.fit(x, y, x, y, epochs=8)
    except Exception:
        pass  # divergence may raise; restoration is checked below only on success
    final = trainer.evaluate(x, y)["accuracy"]
    assert final >= max(trainer.history.val_accuracy) - 1e-9


def test_restore_best_noop_without_validation():
    x, y = linearly_separable()
    net = make_net()
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.05), restore_best=True,
    )
    history = trainer.fit(x, y, epochs=2)  # no validation set
    assert history.epochs == 2  # just must not crash


def test_restore_best_off_keeps_final_weights():
    x, y = linearly_separable()

    def run(restore):
        net = make_net(seed=1)
        trainer = nn.Trainer(
            net, nn.SGD(net.parameters(), lr=0.05),
            rng=np.random.default_rng(0), restore_best=restore,
        )
        trainer.fit(x, y, x, y, epochs=4)
        return [p.data.copy() for p in net.parameters()]

    with_restore = run(True)
    without = run(False)
    # both runs saw identical training; weights may or may not coincide
    # (best epoch could be the last) but shapes/dtypes must match
    for a, b in zip(with_restore, without):
        assert a.shape == b.shape
