"""AutoTuner dynamics: convergence, hysteresis, bounds, cooldown.

These tests close the loop around a deterministic *plant*: an analytic
toy server whose p99 is a function of offered load and the tuner's own
knob settings.  No threads, no wall clock — every window is a pure
function call, so convergence claims are exact, not statistical.
"""

import pytest

from repro.control import (
    AutoTuner,
    KnobConfig,
    SLOPolicy,
    Signal,
    TierLadder,
    TokenBucket,
)
from repro.errors import ConfigurationError


def make_signal(window, p99, completed=50, queue_depth=0,
                energy=10.0, throughput=100.0):
    return Signal(
        window=window, at=float(window), elapsed_s=1.0,
        completed=completed, failed=0, rejected=0, throttled=0,
        deadline_expired=0, degraded=0, queue_depth=queue_depth,
        p50_ms=p99 / 2, p99_ms=p99, mean_ms=p99 / 2,
        energy_uj_per_request=energy, throughput_ips=throughput,
    )


def make_tuner(policy=None, accuracies=(0.95, 0.93, 0.85), **knob_kwargs):
    knob_kwargs.setdefault("max_batch", 32)
    return AutoTuner(
        policy or SLOPolicy(latency_slo_ms=50.0, breach_windows=2,
                            recover_windows=3, cooldown_windows=2),
        TierLadder.from_precisions(
            ["fixed16", "fixed8", "fixed4"], accuracies=list(accuracies)
        ),
        knobs=KnobConfig(**knob_kwargs),
    )


class Plant:
    """Toy server: p99 scales with load and inversely with the knobs.

    Each precision tier and each batch doubling halves the latency; a
    binding admission limit caps the load the server actually sees.
    """

    def __init__(self, tuner, base_ms=12.5):
        self.tuner = tuner
        self.base_ms = base_ms

    def p99(self, load):
        admitted = load
        rate = self.tuner.admission.rate_ips
        if rate is not None:
            admitted = min(load, rate)
        relief = (self.tuner.batch_size / 8.0) * (2 ** self.tuner.tier_index)
        return self.base_ms * admitted / (100.0 * relief)


def run_windows(tuner, loads, start=0):
    """Drive the closed loop over a load trace; returns the records."""
    plant = Plant(tuner)
    records = []
    for offset, load in enumerate(loads):
        signal = make_signal(start + offset, plant.p99(load),
                             throughput=min(load, 400.0))
        action = tuner.step(signal)
        records.append((signal, action))
    return records


def test_converges_under_step_load_without_oscillation():
    tuner = make_tuner()
    # step overload: p99 starts 8x over the SLO at the default knobs
    records = run_windows(tuner, [3200.0] * 40)
    tail = records[-10:]
    policy = tuner.policy
    assert all(not policy.breached(s.p99_ms) for s, _ in tail), (
        "controller failed to bring p99 under the SLO"
    )
    assert all(a is None for _, a in tail), (
        "knobs still moving after convergence — the loop oscillates"
    )


def test_converges_under_ramp_load():
    tuner = make_tuner()
    ramp = [100.0 + 80.0 * i for i in range(30)] + [2500.0] * 20
    records = run_windows(tuner, ramp)
    tail = records[-8:]
    assert all(not tuner.policy.breached(s.p99_ms) for s, _ in tail)
    assert all(a is None for _, a in tail)


def test_knob_bounds_never_exceeded():
    tuner = make_tuner()
    knobs = tuner.knobs
    floor = tuner.ladder.floor_index(tuner.policy.accuracy_floor)
    for _, _ in run_windows(tuner, [10_000.0] * 60):
        assert knobs.min_batch <= tuner.batch_size <= knobs.max_batch
        assert 0 <= tuner.tier_index <= floor
        rate = tuner.admission.rate_ips
        assert rate is None or rate >= knobs.min_admission_ips
    # then full recovery: bounds hold on the way back up too
    for _, _ in run_windows(tuner, [10.0] * 60, start=60):
        assert knobs.min_batch <= tuner.batch_size <= knobs.max_batch
        assert 0 <= tuner.tier_index <= floor


def test_hysteresis_dead_band_holds_knobs():
    tuner = make_tuner()
    policy = tuner.policy
    # p99 pinned between recover (35) and breach (50): never act
    for window in range(20):
        assert tuner.step(make_signal(window, 42.0)) is None
    assert tuner.actions == []
    assert tuner.batch_size == tuner.knobs.preferred_batch
    assert tuner.tier_index == 0
    # ...and a single breach window is not enough either
    assert tuner.step(make_signal(20, 60.0)) is None
    assert policy.breach_windows > 1


def test_cooldown_spaces_actions():
    tuner = make_tuner()
    for window in range(20):
        tuner.step(make_signal(window, 500.0))  # permanent breach
    windows = [action.window for action in tuner.actions]
    assert len(windows) >= 3
    gaps = [b - a for a, b in zip(windows, windows[1:])]
    assert all(
        gap >= tuner.policy.cooldown_windows + 1 for gap in gaps
    ), f"actions too close together: {windows}"


def test_escalation_order_batch_tier_admission():
    tuner = make_tuner(max_batch=16, preferred_batch=8)
    for window in range(40):
        tuner.step(make_signal(window, 500.0, throughput=200.0))
    knob_order = [action.knob for action in tuner.actions]
    assert knob_order[0] == "batch"          # cheapest knob first
    assert "tier" in knob_order and "admission" in knob_order
    assert knob_order.index("batch") < knob_order.index("tier")
    assert knob_order.index("tier") < knob_order.index("admission")
    # after batch maxed and tiers exhausted, only admission remains
    assert tuner.batch_size == 16
    assert tuner.tier_index == 2
    assert tuner.admission.limited


def test_accuracy_floor_stops_tier_descent():
    policy = SLOPolicy(latency_slo_ms=50.0, accuracy_floor=0.90,
                       breach_windows=1, cooldown_windows=1)
    tuner = make_tuner(policy=policy)
    for window in range(30):
        tuner.step(make_signal(window, 500.0))
    # fixed4 (accuracy 0.85) is below the 0.90 floor: never selected
    assert tuner.tier_index <= 1
    assert tuner.precision != "fixed4"
    assert "fixed4" not in {
        action.new for action in tuner.actions if action.knob == "tier"
    }


def test_energy_budget_tiers_down_without_latency_breach():
    policy = SLOPolicy(latency_slo_ms=50.0, energy_budget_uj=8.0,
                       cooldown_windows=1)
    tuner = make_tuner(policy=policy)
    action = tuner.step(make_signal(0, p99=10.0, energy=20.0))
    assert action is not None and action.knob == "tier"
    assert action.reason == "energy over budget"
    assert tuner.tier_index == 1


def test_relaxation_reverses_in_order():
    tuner = make_tuner(max_batch=16)
    # drive to full escalation first
    for window in range(40):
        tuner.step(make_signal(window, 500.0, throughput=200.0))
    assert tuner.admission.limited and tuner.tier_index > 0
    escalations = len(tuner.actions)
    # now a long healthy stretch with an empty queue
    for window in range(40, 120):
        tuner.step(make_signal(window, 5.0, queue_depth=0,
                               throughput=50.0))
    relaxations = tuner.actions[escalations:]
    knobs = [action.knob for action in relaxations]
    # admission is released before the tier recovers, tier before batch
    assert knobs and knobs[0] == "admission"
    assert not tuner.admission.limited
    assert tuner.tier_index == 0
    assert tuner.batch_size == tuner.knobs.preferred_batch
    last_admission = max(
        i for i, knob in enumerate(knobs) if knob == "admission"
    )
    first_tier = min(i for i, knob in enumerate(knobs) if knob == "tier")
    first_batch = min(i for i, knob in enumerate(knobs) if knob == "batch")
    assert last_admission < first_tier < first_batch


def test_idle_windows_are_no_ops():
    tuner = make_tuner()
    # two breaches, then silence: the streak must survive the idle gap
    tuner.step(make_signal(0, 500.0))
    for window in range(1, 10):
        idle = make_signal(window, 0.0, completed=0, throughput=0.0)
        assert tuner.step(idle) is None
    action = tuner.step(make_signal(10, 500.0))
    assert action is not None  # second breach completes the streak


def test_accuracy_loss_bound_tracks_deepest_tier():
    tuner = make_tuner()
    assert tuner.accuracy_loss_bound() == 0.0
    for window in range(40):
        tuner.step(make_signal(window, 500.0))
    assert tuner.tier_index == 2
    assert tuner.accuracy_loss_bound() == pytest.approx(0.95 - 0.85)


def test_watermark_mode_matches_legacy_degrade_semantics():
    tuner = AutoTuner.latency_only(
        watermark=10, fallback={"fixed8": "fixed4", "fixed4": "fixed2"}
    )
    assert tuner.watermark_mode
    assert tuner.route("fixed8", 9) == "fixed8"
    assert tuner.route("fixed8", 10) == "fixed4"   # inclusive watermark
    assert tuner.route("fixed8", 500) == "fixed4"  # chains not followed
    assert tuner.route("float32", 500) == "float32"
    # and the dynamics are inert
    assert tuner.step(make_signal(0, 1e9)) is None
    assert tuner.actions == []


def test_watermark_mode_validation():
    with pytest.raises(ConfigurationError):
        AutoTuner.latency_only(watermark=0, fallback={"fixed8": "fixed4"})
    with pytest.raises(ConfigurationError):
        AutoTuner.latency_only(watermark=4, fallback={})
    with pytest.raises(ConfigurationError):
        AutoTuner.latency_only(watermark=4, fallback={"fixed8": "fixed8"})


def test_knob_config_validation():
    with pytest.raises(ConfigurationError):
        KnobConfig(min_batch=8, preferred_batch=4)
    with pytest.raises(ConfigurationError):
        KnobConfig(admission_decrease=1.0)
    with pytest.raises(ConfigurationError):
        KnobConfig(admission_headroom=1.0)


def test_controller_route_follows_tier_for_nominal_precision():
    tuner = make_tuner()
    assert tuner.route("fixed16", 0) == "fixed16"
    tuner.tier_index = 2
    assert tuner.route("fixed16", 0) == "fixed4"
    # non-nominal traffic is never rerouted by the tier knob
    assert tuner.route("float32", 0) == "float32"


def test_shared_admission_bucket_is_actuated():
    bucket = TokenBucket()
    tuner = make_tuner()
    tuner.admission = bucket
    for window in range(40):
        tuner.step(make_signal(window, 500.0, throughput=200.0))
    assert bucket.limited
