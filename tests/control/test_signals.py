"""SensorHub: incremental windows over a live ServerStats."""

from repro.control import SensorHub
from repro.obs.metrics import MetricsRegistry
from repro.serve.stats import ServerStats


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_stats():
    return ServerStats(metrics=MetricsRegistry())


def test_windows_see_only_their_own_samples():
    clock = FakeClock()
    stats = make_stats()
    hub = SensorHub(stats, depth_fn=lambda: 3, clock=clock)

    for latency in (10.0, 20.0, 30.0):
        stats.record_completion(latency, queue_ms=1.0, energy_uj=5.0)
    clock.advance(1.0)
    first = hub.sample()
    assert first.window == 0
    assert first.completed == 3
    assert first.queue_depth == 3
    assert first.elapsed_s == 1.0
    assert first.p99_ms <= 30.0 and first.p50_ms == 20.0
    assert first.energy_uj_per_request == 5.0
    assert first.throughput_ips == 3.0
    assert first.has_traffic

    # a second window sees only the new completion, not the old three
    stats.record_completion(100.0, queue_ms=1.0, energy_uj=7.0)
    clock.advance(2.0)
    second = hub.sample()
    assert second.window == 1
    assert second.completed == 1
    assert second.p99_ms == 100.0
    assert second.energy_uj_per_request == 7.0
    assert second.throughput_ips == 0.5


def test_counter_deltas_and_error_rate():
    clock = FakeClock()
    stats = make_stats()
    hub = SensorHub(stats, depth_fn=lambda: 0, clock=clock)
    stats.record_failure(2)
    stats.record_rejection()
    stats.record_throttled(4)
    stats.record_deadline_expired(1)
    stats.record_degraded(3)
    stats.record_completion(5.0, 0.5, 1.0)
    clock.advance(1.0)
    signal = hub.sample()
    assert signal.failed == 2
    assert signal.rejected == 1
    assert signal.throttled == 4
    assert signal.deadline_expired == 1
    assert signal.degraded == 3
    assert signal.error_rate == 3 / 4  # (2 failed + 1 expired) / 4 outcomes

    # deltas reset: an empty follow-up window reports zeros
    clock.advance(1.0)
    idle = hub.sample()
    assert idle.completed == idle.failed == idle.throttled == 0
    assert not idle.has_traffic
    assert idle.error_rate == 0.0
    assert idle.p99_ms == 0.0
