"""ControlLoop: actuation wiring, attainment accounting, observe mode."""

from repro.control import (
    AutoTuner,
    ControlLoop,
    KnobConfig,
    SLOPolicy,
    TierLadder,
)
from repro.obs.metrics import MetricsRegistry
from repro.serve.batcher import Batcher, BatchPolicy
from repro.serve.stats import ServerStats


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FakeServer:
    """Just enough server: stats + batchers + the two actuator slots."""

    def __init__(self, n_batchers=2):
        self.stats = ServerStats(metrics=MetricsRegistry())
        self.batchers = [
            Batcher(BatchPolicy(max_batch_size=32, max_delay_ms=1.0),
                    max_queue_depth=64)
            for _ in range(n_batchers)
        ]
        self.degrade = None
        self.admission = None


def make_loop(server, tuner=None, clock=None):
    policy = SLOPolicy(latency_slo_ms=50.0, breach_windows=1,
                       cooldown_windows=1)
    if tuner is None:
        tuner = AutoTuner(
            policy,
            TierLadder.from_precisions(["fixed8", "fixed4"]),
            knobs=KnobConfig(max_batch=64),
        )
    return ControlLoop(
        server, policy, tuner=tuner, clock=clock or FakeClock(),
        metrics=MetricsRegistry(),
    ), tuner


def test_install_wires_tuner_into_server():
    server = FakeServer()
    loop, tuner = make_loop(server)
    loop.install()
    assert server.degrade is tuner
    assert server.admission is tuner.admission


def test_observe_only_loop_never_actuates():
    server = FakeServer()
    policy = SLOPolicy(latency_slo_ms=50.0)
    loop = ControlLoop(server, policy, tuner=None, clock=FakeClock(),
                       metrics=MetricsRegistry())
    loop.install()
    assert server.degrade is None and server.admission is None
    server.stats.record_completion(500.0, 1.0, 1.0)  # way over SLO
    record = loop.tick()
    assert record.slo_met is False
    assert record.actions == ()
    assert server.batchers[0].policy.max_batch_size == 32  # untouched


def test_tick_applies_batch_knob_to_every_batcher():
    server = FakeServer(n_batchers=3)
    clock = FakeClock()
    loop, tuner = make_loop(server, clock=clock)
    loop.install()
    # one breached window with breach_windows=1 escalates: batch doubles
    server.stats.record_completion(500.0, 1.0, 1.0)
    clock.advance(0.1)
    record = loop.tick()
    assert record.actions and record.actions[0].knob == "batch"
    assert tuner.batch_size == 2 * tuner.knobs.preferred_batch
    for batcher in server.batchers:
        assert batcher.policy.max_batch_size == tuner.batch_size


def test_attainment_counts_only_traffic_windows():
    server = FakeServer()
    clock = FakeClock()
    loop, _ = make_loop(server, clock=clock)
    # idle window: judged as None, excluded from attainment
    clock.advance(0.1)
    assert loop.tick().slo_met is None
    # met window
    server.stats.record_completion(10.0, 1.0, 1.0)
    clock.advance(0.1)
    assert loop.tick().slo_met is True
    # missed window
    server.stats.record_completion(500.0, 1.0, 1.0)
    clock.advance(0.1)
    assert loop.tick().slo_met is False
    assert loop.attainment() == 0.5
    assert len(loop.history) == 3


def test_attainment_is_one_for_an_idle_run():
    server = FakeServer()
    loop, _ = make_loop(server)
    loop.tick()
    assert loop.attainment() == 1.0


def test_knob_trajectory_is_json_ready():
    import json

    server = FakeServer()
    clock = FakeClock()
    loop, _ = make_loop(server, clock=clock)
    server.stats.record_completion(500.0, 1.0, 1.0)
    clock.advance(0.1)
    loop.tick()
    trajectory = loop.knob_trajectory()
    assert len(trajectory) == 1
    entry = json.loads(json.dumps(trajectory))[0]
    assert entry["window"] == 0
    assert entry["p99_ms"] == 500.0
    assert entry["slo_met"] is False
    assert entry["precision"] == "fixed8"


def test_threaded_start_stop_ticks():
    server = FakeServer()
    policy = SLOPolicy(latency_slo_ms=50.0)
    loop = ControlLoop(server, policy, tuner=None, interval_s=0.01,
                       metrics=MetricsRegistry())
    loop.start()
    loop.start()  # idempotent
    import time
    time.sleep(0.08)
    loop.stop()
    loop.stop()  # idempotent
    assert len(loop.history) >= 2  # several ticks plus the final drain


def test_controller_metrics_published():
    server = FakeServer()
    clock = FakeClock()
    metrics = MetricsRegistry()
    policy = SLOPolicy(latency_slo_ms=50.0, breach_windows=1,
                       cooldown_windows=1)
    tuner = AutoTuner(policy, TierLadder.from_precisions(["fixed8"]))
    loop = ControlLoop(server, policy, tuner=tuner, clock=clock,
                       metrics=metrics)
    server.stats.record_completion(500.0, 1.0, 1.0)
    clock.advance(0.1)
    loop.tick()
    snap = metrics.snapshot()
    assert snap["counters"]["controller.windows"] == 1
    assert snap["counters"]["controller.breaches"] == 1
    assert "controller.batch" in snap["gauges"]
