"""TokenBucket admission: refill math, burst cap, disable semantics."""

import pytest

from repro.control import TokenBucket
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_validation():
    with pytest.raises(ConfigurationError):
        TokenBucket(rate_ips=0.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(rate_ips=-1.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(burst=0.5)
    with pytest.raises(ConfigurationError):
        TokenBucket(rate_ips=10.0).set_rate(0.0)


def test_unlimited_by_default():
    bucket = TokenBucket()
    assert not bucket.limited
    assert bucket.rate_ips is None
    assert all(bucket.try_acquire() for _ in range(10_000))


def test_rate_limits_after_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_ips=10.0, burst=4.0, clock=clock)
    assert bucket.limited
    # the burst drains first...
    assert [bucket.try_acquire() for _ in range(5)] == [True] * 4 + [False]
    # ...then admissions track the refill rate exactly
    clock.advance(0.1)   # one token earned at 10/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_tokens_capped_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_ips=100.0, burst=2.0, clock=clock)
    clock.advance(60.0)  # a long idle gap earns at most `burst` tokens
    grabbed = sum(bucket.try_acquire() for _ in range(10))
    assert grabbed == 2


def test_set_rate_and_disable():
    clock = FakeClock()
    bucket = TokenBucket(rate_ips=1.0, burst=1.0, clock=clock)
    assert bucket.try_acquire() and not bucket.try_acquire()
    bucket.set_rate(1000.0)
    clock.advance(0.01)  # 10 tokens at the new rate (capped at burst=1)
    assert bucket.try_acquire()
    bucket.disable()
    assert bucket.rate_ips is None
    assert all(bucket.try_acquire() for _ in range(100))
