"""TierLadder: ordering, accuracy floor, registry discovery."""

import pytest

from repro.control import PrecisionTier, TierLadder, default_tier_keys
from repro.errors import ConfigurationError


def make_ladder():
    return TierLadder([
        PrecisionTier("fixed16", accuracy=0.95),
        PrecisionTier("fixed8", accuracy=0.93),
        PrecisionTier("fixed4", accuracy=0.80),
    ])


def test_validation():
    with pytest.raises(ConfigurationError):
        TierLadder([])
    with pytest.raises(ConfigurationError):
        TierLadder([PrecisionTier("fixed8"), PrecisionTier("fixed8")])
    with pytest.raises(ConfigurationError):
        PrecisionTier("")
    with pytest.raises(ConfigurationError):
        PrecisionTier("fixed8", accuracy=1.2)
    with pytest.raises(ConfigurationError):
        TierLadder.from_precisions(["fixed8"], accuracies=[0.9, 0.8])


def test_ordering_and_lookup():
    ladder = make_ladder()
    assert len(ladder) == 3
    assert ladder.precisions == ["fixed16", "fixed8", "fixed4"]
    assert ladder.index_of("fixed8") == 1
    assert ladder.index_of("binary") is None
    assert ladder[0].precision == "fixed16"


def test_floor_index_respects_known_accuracy():
    ladder = make_ladder()
    assert ladder.floor_index(None) == 2          # no floor: full depth
    assert ladder.floor_index(0.90) == 1          # fixed4 (0.80) excluded
    assert ladder.floor_index(0.99) == 0          # nothing below tier 0
    assert ladder.floor_index(0.50) == 2


def test_floor_index_permits_unknown_accuracy():
    ladder = TierLadder.from_precisions(["fixed8", "fixed4"])
    assert ladder.floor_index(0.99) == 1  # unknown accuracy is not vetoed


def test_accuracy_drop():
    ladder = make_ladder()
    assert ladder.accuracy_drop(0) == 0.0
    assert ladder.accuracy_drop(2) == pytest.approx(0.15)
    unknown = TierLadder.from_precisions(["fixed8", "fixed4"])
    assert unknown.accuracy_drop(1) is None


class _Manifest:
    def __init__(self, network, precision, accuracy, energy):
        self.network = network
        self.precision = precision
        self.accuracy = accuracy
        self.energy_uj_per_image = energy


class _FakeStore:
    def __init__(self, manifests):
        self._manifests = manifests

    def list_artifacts(self):
        return list(self._manifests)


def test_from_registry_keeps_best_per_precision_sorted_by_energy():
    store = _FakeStore([
        _Manifest("lenet_small", "fixed8", 0.91, 40.0),
        _Manifest("lenet_small", "fixed8", 0.94, 40.0),   # better, kept
        _Manifest("lenet_small", "fixed16", 0.95, 90.0),
        _Manifest("lenet_small", "fixed4", 0.82, 12.0),
        _Manifest("other_net", "fixed2", 0.50, 1.0),      # ignored
    ])
    ladder = TierLadder.from_registry(store, "lenet_small")
    assert ladder.precisions == ["fixed16", "fixed8", "fixed4"]
    assert ladder[1].accuracy == 0.94
    assert ladder[2].energy_uj == 12.0
    with pytest.raises(ConfigurationError):
        TierLadder.from_registry(store, "missing_net")


def test_default_tier_keys():
    assert default_tier_keys("fixed8") == ["fixed8", "fixed4"]
    assert default_tier_keys("fixed4") == ["fixed4"]
    assert default_tier_keys("fixed16") == ["fixed16", "fixed8", "fixed4"]
    # non-fixed tier 0 keeps itself on top of the fixed menu
    assert default_tier_keys("float32")[0] == "float32"
    assert "fixed8" in default_tier_keys("float32")
