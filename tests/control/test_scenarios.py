"""Scenarios: registry, scaling, and a real end-to-end A/B run."""

import numpy as np
import pytest

from repro.control import (
    KnobConfig,
    Phase,
    SCENARIOS,
    Scenario,
    ScenarioRunner,
    SLOPolicy,
    TierLadder,
    calibrate_slo,
    get_scenario,
    verdict,
)
from repro.data import load_dataset
from repro.errors import ConfigurationError
from repro.serve import InferenceServer, ModelStore


@pytest.fixture(scope="module")
def digits_images():
    split = load_dataset("digits", n_train=32, n_test=64, seed=0)
    return split.test.images


@pytest.fixture(scope="module")
def store(digits_images):
    store = ModelStore(
        calibration_data={"digits": digits_images[:32]},
        calibration_images=32,
    )
    # warm outside any timed run
    store.warm("lenet_small", "fixed8")
    store.warm("lenet_small", "fixed4")
    return store


def test_scenario_registry():
    assert {"flash_crowd", "diurnal", "sustained_overload", "chaos"} \
        <= set(SCENARIOS)
    crowd = get_scenario("flash_crowd")
    peak = max(phase.concurrency for phase in crowd.phases)
    edges = (crowd.phases[0].concurrency, crowd.phases[-1].concurrency)
    assert peak >= 8 * min(edges)  # it is actually a crowd
    with pytest.raises(ConfigurationError):
        get_scenario("nope")


def test_scenario_validation_and_scaling():
    with pytest.raises(ConfigurationError):
        Phase("bad", duration_s=0.0, concurrency=1)
    with pytest.raises(ConfigurationError):
        Phase("bad", duration_s=1.0, concurrency=0)
    with pytest.raises(ConfigurationError):
        Scenario(name="empty", description="", phases=())
    scenario = get_scenario("diurnal")
    scaled = scenario.scaled(0.1)
    assert scaled.name == scenario.name
    assert len(scaled.phases) == len(scenario.phases)
    assert scaled.total_duration_s < scenario.total_duration_s
    # the floor keeps phases long enough to hold a window or two
    assert all(p.duration_s >= 0.2 for p in scenario.scaled(1e-6).phases)
    # concurrency is the shape, not the duration: untouched
    assert [p.concurrency for p in scaled.phases] == \
        [p.concurrency for p in scenario.phases]
    with pytest.raises(ConfigurationError):
        scenario.scaled(0.0)


def test_chaos_scenario_arms_a_phase():
    chaos = get_scenario("chaos")
    seeds = [phase.chaos_seed for phase in chaos.phases]
    assert any(seed is not None for seed in seeds)
    assert seeds[0] is None  # warmup runs clean


def test_calibrate_slo(store, digits_images):
    server = InferenceServer(store, workers=2, max_batch_size=8).start()
    try:
        slo = calibrate_slo(
            server, digits_images, "lenet_small", "fixed8",
            n_requests=16, concurrency=2,
        )
    finally:
        server.stop()
    assert slo >= 5.0  # the floor, at minimum
    assert np.isfinite(slo)


def test_flash_crowd_end_to_end(store, digits_images):
    """The acceptance loop in miniature: autotuned vs static arms."""
    scenario = get_scenario("flash_crowd").scaled(0.25)
    ladder = TierLadder.from_precisions(
        ["fixed8", "fixed4"], accuracies=[0.93, 0.85]
    ).priced(store, "lenet_small")
    assert all(tier.energy_uj is not None for tier in ladder.tiers)
    policy = SLOPolicy(latency_slo_ms=40.0, breach_windows=1,
                       cooldown_windows=1)
    runner = ScenarioRunner(
        server_factory=lambda: InferenceServer(
            store, workers=2, max_batch_size=16, max_queue_depth=128,
        ),
        images=digits_images,
        network="lenet_small",
        precision="fixed8",
        policy=policy,
        ladder=ladder,
        knobs=KnobConfig(max_batch=16, preferred_batch=4),
        interval_s=0.05,
    )
    scenario_verdict, autotuned, static = runner.judge(scenario, 40.0)

    # structural guarantees, not performance ones (CI machines vary):
    assert autotuned.lost == 0 and static.lost == 0
    assert len(autotuned.phases) == len(scenario.phases)
    assert len(autotuned.loop.history) > 0
    assert 0.0 <= autotuned.attainment <= 1.0
    assert 0.0 <= static.attainment <= 1.0
    assert autotuned.report.completed > 0
    assert static.report.completed > 0
    assert scenario_verdict.scenario == "flash_crowd"
    assert scenario_verdict.windows == len(autotuned.loop.history)
    # the static arm never leaves tier 0 and never throttles
    assert static.report.degraded == 0
    assert static.report.throttled == 0
    assert static.accuracy_loss_bound() == 0.0
    # energy accounting is consistent: autotuned can only spend less
    # per request than static tier-0 serving (lower tiers are cheaper)
    assert autotuned.energy_uj_per_request <= \
        static.energy_uj_per_request + 1e-9
    # accuracy bound reflects the tiers actually visited
    bound = autotuned.accuracy_loss_bound()
    assert bound is not None and 0.0 <= bound <= 0.93 - 0.85 + 1e-9
    # the verdict's text report renders
    assert "SLO attainment" in scenario_verdict.format()
    # client-side latency samples were recorded by the loadgen
    assert len(autotuned.latencies_ms) == autotuned.report.completed


def test_verdict_gates_on_attainment(store, digits_images):
    """verdict() fails a run that misses the attainment target."""
    scenario = get_scenario("flash_crowd").scaled(0.15)
    ladder = TierLadder.from_precisions(["fixed8", "fixed4"])
    policy = SLOPolicy(latency_slo_ms=1000.0)
    runner = ScenarioRunner(
        server_factory=lambda: InferenceServer(
            store, workers=2, max_batch_size=16, max_queue_depth=128,
        ),
        images=digits_images,
        network="lenet_small",
        precision="fixed8",
        policy=policy,
        ladder=ladder,
        interval_s=0.05,
    )
    run = runner.run(scenario, autotune=True)
    static = runner.run(scenario, autotune=False)
    generous = verdict(run, static, 1000.0, attainment_target=0.0)
    assert generous.passed  # lost == 0 and any attainment clears 0.0
    impossible = verdict(run, static, 1000.0, attainment_target=1.01)
    assert not impossible.passed
