"""SLOPolicy: validation and the hysteresis thresholds."""

import pytest

from repro.control import SLOPolicy
from repro.errors import ConfigurationError


def test_validation():
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=0.0)
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=-5.0)
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=float("nan"))
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=10.0, energy_budget_uj=0.0)
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=10.0, accuracy_floor=1.5)
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=10.0, recover_ratio=1.0)
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=10.0, breach_windows=0)
    with pytest.raises(ConfigurationError):
        SLOPolicy(latency_slo_ms=10.0, cooldown_windows=0)


def test_infinite_slo_is_legal():
    # the DegradePolicy shim builds a latency-only tuner this way
    policy = SLOPolicy(latency_slo_ms=float("inf"))
    assert not policy.breached(1e12)


def test_breach_and_recover_thresholds():
    policy = SLOPolicy(latency_slo_ms=100.0, recover_ratio=0.7)
    assert policy.breached(100.1)
    assert not policy.breached(100.0)      # SLO is inclusive
    assert policy.healthy(70.0)            # at the recover threshold
    assert not policy.healthy(70.1)        # inside the dead band
    # the dead band: neither breached nor healthy
    assert not policy.breached(85.0) and not policy.healthy(85.0)


def test_energy_budget():
    unbudgeted = SLOPolicy(latency_slo_ms=10.0)
    assert not unbudgeted.over_energy(1e9)
    budgeted = SLOPolicy(latency_slo_ms=10.0, energy_budget_uj=50.0)
    assert budgeted.over_energy(50.1)
    assert not budgeted.over_energy(50.0)
