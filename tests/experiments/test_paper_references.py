"""Consistency checks on the embedded paper reference values.

The experiment modules carry the paper's published numbers for
side-by-side reporting; these tests pin them against transcription
errors (checked once against the paper text).
"""

import pytest

from repro.core.precision import PAPER_PRECISIONS
from repro.experiments import memory, table3, table4, table5


def test_table3_reference_complete():
    assert set(table3.PAPER_TABLE3) == {s.key for s in PAPER_PRECISIONS}
    # spot values from the paper
    assert table3.PAPER_TABLE3["float32"] == (16.74, 1379.60)
    assert table3.PAPER_TABLE3["binary"] == (1.21, 95.36)


def test_table3_reference_monotone():
    fixed = [table3.PAPER_TABLE3[k] for k in ("fixed32", "fixed16", "fixed8", "fixed4")]
    areas = [a for a, _ in fixed]
    powers = [p for _, p in fixed]
    assert areas == sorted(areas, reverse=True)
    assert powers == sorted(powers, reverse=True)


def test_table4_reference_values():
    assert set(table4.PAPER_TABLE4) == {"digits", "svhn"}
    digits = table4.PAPER_TABLE4["digits"]
    assert set(digits) == {s.key for s in PAPER_PRECISIONS}
    assert digits["float32"] == 99.20
    svhn = table4.PAPER_TABLE4["svhn"]
    assert svhn["fixed4"] is None        # the paper's NA row
    assert svhn["binary"] == 19.57       # the catastrophic binary failure


def test_table5_reference_values():
    assert len(table5.PAPER_TABLE5_ACCURACY) == 14
    assert table5.PAPER_TABLE5_ACCURACY[("float32", "alex")] == 81.22
    assert table5.PAPER_TABLE5_ACCURACY[("pow2", "alex++")] == 81.26
    # the paper's headline: pow2++ matches the float baseline
    baseline = table5.PAPER_TABLE5_ACCURACY[("float32", "alex")]
    assert table5.PAPER_TABLE5_ACCURACY[("pow2", "alex++")] >= baseline - 0.1


def test_table5_rows_match_reference_keys():
    assert set(table5.TABLE5_ROWS) == set(table5.PAPER_TABLE5_ACCURACY)


def test_table5_enlargement_improves_accuracy_in_paper():
    """The trend the reproduction must mirror exists in the paper data."""
    for key in ("fixed16", "pow2", "binary"):
        base = table5.PAPER_TABLE5_ACCURACY[(key, "alex")]
        plus_plus = table5.PAPER_TABLE5_ACCURACY[(key, "alex++")]
        assert plus_plus > base


def test_memory_reference_values():
    assert memory.PAPER_PARAMETER_KB == {
        "lenet": 1650.0,
        "convnet": 2150.0,
        "alex": 350.0,
        "alex+": 1250.0,
        "alex++": 9400.0,
    }
    assert memory.NETWORKS == sorted(memory.PAPER_PARAMETER_KB,
                                     key=memory.NETWORKS.index)
