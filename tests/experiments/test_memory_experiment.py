"""Section V-B memory experiment driver tests."""

import pytest

from repro.experiments import memory


@pytest.fixture(scope="module")
def records():
    return memory.run()


def test_covers_all_five_networks(records):
    assert [r["network"] for r in records] == [
        "lenet", "convnet", "alex", "alex+", "alex++",
    ]


def test_float32_matches_paper_within_5pct(records):
    for record in records:
        model_kb = record["footprints"]["float32"].parameter_kb
        assert model_kb == pytest.approx(record["paper_kb"], rel=0.05), (
            record["network"]
        )


def test_reduction_range(records):
    for record in records:
        reductions = record["reductions"]
        assert reductions["fixed16"] == pytest.approx(2.0)
        assert reductions["binary"] == pytest.approx(32.0)


def test_formatting(records):
    text = memory.format_results(records)
    assert "lenet" in text and "alex++" in text
    assert "32x" in text
