"""Table III and Figure 3 driver tests (hardware-only, exact)."""

from repro.experiments import fig3, table3


def test_table3_rows_complete():
    rows = table3.run()
    assert len(rows) == 7
    for row in rows:
        assert {"precision", "area_mm2", "power_mw", "paper_area_mm2",
                "paper_power_mw", "area_error_pct", "power_error_pct"} <= set(row)


def test_table3_errors_within_model_fidelity():
    for row in table3.run():
        assert abs(row["area_error_pct"]) < 6.0, row["precision"]
        assert abs(row["power_error_pct"]) < 13.0, row["precision"]


def test_table3_savings_shape():
    rows = {row["key"]: row for row in table3.run()}
    assert rows["float32"]["area_saving_pct"] == 0.0
    assert rows["binary"]["area_saving_pct"] > 90.0
    assert rows["fixed16"]["power_saving_pct"] > 55.0
    assert rows["pow2"]["power_saving_pct"] > rows["fixed16"]["power_saving_pct"]


def test_table3_formatting():
    text = table3.format_results(table3.run())
    assert "Table III" in text
    assert "Binary Net (1,16)" in text
    assert "paper" in text


def test_fig3_breakdown_records():
    records = fig3.run()
    assert len(records) == 7
    for record in records:
        assert set(record["breakdown"]) == {
            "memory", "registers", "combinational", "buf_inv",
        }


def test_fig3_buffer_windows():
    """Section V-B: buffers are 76-96 % of area, 75-93 % of power."""
    for record in fig3.run():
        assert 0.75 <= record["memory_area_fraction"] <= 0.965, record["key"]
        assert 0.74 <= record["memory_power_fraction"] <= 0.935, record["key"]


def test_fig3_formatting():
    text = fig3.format_results(fig3.run())
    assert "Figure 3" in text
    assert "Design Area" in text
    assert "Power Consumption" in text
    assert "legend" in text
