"""SweepRunner tests with tiny budgets (plumbing-level)."""

import numpy as np
import pytest

from repro import core
from repro.core.sweep import SweepConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepRunner


@pytest.fixture(scope="module")
def runner():
    config = ExperimentConfig(
        n_train=200,
        n_test=120,
        sweep=SweepConfig(float_epochs=3, qat_epochs=1, float_lr=0.02),
    )
    return SweepRunner(config)


def test_quick_mode_uses_proxy_networks(runner):
    point = runner.evaluate_point("lenet", core.get_precision("float32"))
    assert point.network == "lenet"
    assert point.trained_network == "lenet_small"


def test_energy_always_from_paper_architecture(runner):
    point = runner.evaluate_point("lenet", core.get_precision("float32"))
    # LeNet float32 per-image energy (paper: 60.74 uJ)
    assert point.energy_uj == pytest.approx(60.74, rel=0.10)


def test_accuracy_results_cached(runner):
    first = runner.accuracy_result("lenet", core.get_precision("fixed8"))
    second = runner.accuracy_result("lenet", core.get_precision("fixed8"))
    assert first is second


def test_energy_reports_cached(runner):
    first = runner.energy_report("lenet", core.get_precision("fixed8"))
    second = runner.energy_report("lenet", core.get_precision("fixed8"))
    assert first is second


def test_datasets_cached(runner):
    assert runner.split_for("digits") is runner.split_for("digits")


def test_savings_reference_network(runner):
    """Table V references enlarged networks to plain ALEX float32."""
    point = runner.evaluate_point(
        "alex+", core.get_precision("float32"), energy_baseline_network="alex"
    )
    assert point.energy_saving_pct < 0  # ALEX+ float costs more than ALEX float


def test_evaluate_network_covers_requested_specs(runner):
    specs = [core.get_precision(k) for k in ("float32", "binary")]
    points = runner.evaluate_network("lenet", precisions=specs)
    assert [p.spec.key for p in points] == ["float32", "binary"]
    assert all(0.0 <= p.accuracy <= 1.0 for p in points)


def test_full_mode_uses_paper_networks():
    config = ExperimentConfig.full()
    assert config.accuracy_network("alex++") == "alex++"
    quick = ExperimentConfig.quick()
    assert quick.accuracy_network("alex++") == "alex_small++"


def test_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    assert ExperimentConfig.from_environment().mode == "full"
    monkeypatch.delenv("REPRO_FULL")
    assert ExperimentConfig.from_environment().mode == "quick"
