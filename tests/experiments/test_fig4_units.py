"""Unit tests for fig4 helpers (no training)."""

from repro.core.precision import get_precision
from repro.experiments import fig4
from repro.experiments.runner import TASK_NETWORKS, EvaluatedPoint
from repro.zoo import NETWORK_BUILDERS, network_info


def make_point(network, key, accuracy, energy, converged=True):
    return EvaluatedPoint(
        network=network,
        trained_network=network,
        spec=get_precision(key),
        accuracy=accuracy,
        converged=converged,
        energy_uj=energy,
        energy_saving_pct=0.0,
    )


def test_design_points_skip_non_converged():
    points = fig4.design_points([
        make_point("alex", "fixed16", 0.8, 100.0),
        make_point("alex", "fixed4", 0.0, 50.0, converged=False),
    ])
    assert len(points) == 1
    assert points[0].metadata["precision"] == "fixed16"


def test_design_points_labels_carry_variant_suffix():
    points = fig4.design_points([
        make_point("alex++", "pow2", 0.8, 200.0),
    ])
    assert points[0].label == "Powers of Two++ (6,16)"
    assert points[0].accuracy == 80.0


def test_task_networks_consistent_with_zoo():
    for dataset, networks in TASK_NETWORKS.items():
        for name in networks:
            info = network_info(name)
            assert info.dataset == dataset
            assert name in NETWORK_BUILDERS
