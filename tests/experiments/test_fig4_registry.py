"""fig4 → registry integration: publish points, promote the frontier."""

import numpy as np
import pytest

from repro.core.precision import PrecisionSpec
from repro.core.sweep import SweepConfig
from repro.experiments import fig4
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepRunner
from repro.registry import ArtifactStore, Channel


@pytest.fixture(scope="module")
def runner():
    config = ExperimentConfig(
        n_train=250,
        n_test=120,
        sweep=SweepConfig(float_epochs=3, qat_epochs=0, float_lr=0.02),
    )
    return SweepRunner(config, keep_states=True)


@pytest.fixture(scope="module")
def fig4_result(runner):
    return fig4.run(runner=runner)


@pytest.fixture(scope="module")
def published(fig4_result, runner, tmp_path_factory):
    root = tmp_path_factory.mktemp("fig4-registry")
    return fig4.publish_registry(fig4_result, runner, str(root))


def test_runner_retains_trained_states(runner, fig4_result):
    point = fig4_result["points"][0]
    spec = PrecisionSpec.parse(point.metadata["precision"])
    state = runner.trained_state(point.metadata["network"], spec)
    assert state is not None
    assert all(isinstance(arr, np.ndarray) for arr in state.values())


def test_trained_state_missing_point_is_none(runner):
    assert runner.trained_state("lenet", PrecisionSpec.parse("float32")) is None


def test_publishes_every_converged_point(published, fig4_result):
    artifacts = published["artifacts"]
    assert set(artifacts) == {p.label for p in fig4_result["points"]}
    store = published["store"]
    digests = {m.digest for m in artifacts.values()}
    assert digests <= {m.digest for m in store.list_artifacts()}


def test_manifests_record_paper_provenance(published, fig4_result):
    by_label = {p.label: p for p in fig4_result["points"]}
    for label, manifest in published["artifacts"].items():
        point = by_label[label]
        assert manifest.created_by == "experiments.fig4"
        assert manifest.extra["paper_network"] == point.metadata["network"]
        assert float(manifest.extra["paper_energy_uj"]) == pytest.approx(
            point.energy_uj, rel=1e-4
        )
        assert manifest.accuracy == pytest.approx(point.accuracy / 100.0)
        assert manifest.precision == point.metadata["precision"]


def test_frontier_promoted_energy_descending(published, fig4_result):
    frontier = {p.label: p for p in fig4_result["frontier"]}
    handled = [label for label, _ in published["promoted"]]
    handled += [label for label, _ in published["rejected"]]
    assert set(handled) == set(frontier)
    energies = [frontier[label].energy_uj for label in handled]
    assert energies == sorted(energies, reverse=True)
    versions = [entry.version for _, entry in published["promoted"]]
    assert versions == sorted(versions)


def test_channel_ends_on_cheapest_promoted_point(published, fig4_result):
    assert published["promoted"], "gate rejected the entire frontier"
    channel = published["channel"]
    last_label, last_entry = published["promoted"][-1]
    assert channel.active().digest == last_entry.digest
    assert channel.active().digest == published["artifacts"][last_label].digest
    # channel state survives a reload from disk
    reloaded = Channel(published["store"], channel.name)
    assert reloaded.active().digest == last_entry.digest


def test_artifacts_deployable(published):
    store: ArtifactStore = published["store"]
    manifest = published["channel"].active_manifest()
    network = store.load_network(manifest.digest)
    info_shape = network.forward(
        np.zeros((1,) + tuple(manifest_input_shape(manifest)), dtype=np.float64)
    ).shape
    assert info_shape[0] == 1


def manifest_input_shape(manifest):
    from repro.zoo.registry import network_info

    return network_info(manifest.network).input_shape


def test_format_registry_summary(published):
    text = fig4.format_registry(published)
    assert "Registry:" in text
    assert f"{len(published['artifacts'])} artifact(s)" in text
    for label, entry in published["promoted"]:
        assert label in text
        assert entry.digest[:12] in text
    assert "active:" in text
