"""Table IV / Table V / Figure 4 driver tests with tiny budgets.

These verify the drivers' plumbing and output format; the benchmark
harness runs the same drivers at realistic budgets where the paper's
accuracy shape emerges.
"""

import pytest

from repro import core
from repro.core.sweep import SweepConfig
from repro.experiments import fig4, table4, table5
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepRunner


@pytest.fixture(scope="module")
def runner():
    config = ExperimentConfig(
        n_train=250,
        n_test=120,
        sweep=SweepConfig(float_epochs=3, qat_epochs=0, float_lr=0.02),
    )
    return SweepRunner(config)


@pytest.fixture(scope="module")
def table4_results(runner):
    return table4.run(runner=runner)


@pytest.fixture(scope="module")
def table5_results(runner):
    return table5.run(runner=runner)


def test_table4_covers_both_tasks(table4_results):
    assert set(table4_results) == {"digits", "svhn"}
    for points in table4_results.values():
        assert [p.spec.key for p in points] == [
            "float32", "fixed32", "fixed16", "fixed8", "fixed4", "pow2", "binary",
        ]


def test_table4_energy_matches_paper_scale(table4_results):
    digits = {p.spec.key: p for p in table4_results["digits"]}
    assert digits["float32"].energy_uj == pytest.approx(60.74, rel=0.10)
    svhn = {p.spec.key: p for p in table4_results["svhn"]}
    assert svhn["float32"].energy_uj == pytest.approx(754.18, rel=0.10)


def test_table4_savings_track_table3(table4_results):
    digits = {p.spec.key: p for p in table4_results["digits"]}
    assert digits["binary"].energy_saving_pct > 90.0
    assert digits["fixed16"].energy_saving_pct == pytest.approx(59.5, abs=5.0)


def test_table4_formatting(table4_results):
    text = table4.format_results(table4_results)
    assert "Table IV" in text
    assert "digits Acc%" in text and "svhn Sav%" in text


def test_table5_rows_in_paper_order(table5_results):
    labels = [(p.spec.key, p.network) for p in table5_results]
    assert labels == table5.TABLE5_ROWS


def test_table5_energy_savings_reference_alex(table5_results):
    by_row = {(p.spec.key, p.network): p for p in table5_results}
    assert by_row[("float32", "alex")].energy_saving_pct == pytest.approx(0.0)
    # enlarged fixed16 networks use MORE energy than the baseline
    assert by_row[("fixed16", "alex+")].energy_saving_pct < 0
    assert by_row[("fixed16", "alex++")].energy_saving_pct < 0
    # low-precision enlarged networks still save energy
    assert by_row[("pow2", "alex++")].energy_saving_pct > 0
    assert by_row[("binary", "alex++")].energy_saving_pct > 0


def test_table5_formatting(table5_results):
    text = table5.format_results(table5_results)
    assert "Table V" in text
    # every row appears either with numbers or as NA
    assert text.count("\n") >= len(table5_results)


def test_table5_formatting_x_more_rows():
    """Negative savings render as the paper's 'Nx More' style."""
    from repro.core.precision import get_precision
    from repro.experiments.runner import EvaluatedPoint

    points = [
        EvaluatedPoint(
            network="alex+", trained_network="alex+",
            spec=get_precision("fixed16"),
            accuracy=0.8, converged=True,
            energy_uj=450.0, energy_saving_pct=-40.0,
        ),
        EvaluatedPoint(
            network="alex", trained_network="alex",
            spec=get_precision("fixed4"),
            accuracy=0.0, converged=False,
            energy_uj=0.0, energy_saving_pct=0.0,
        ),
    ]
    text = table5.format_results(points)
    assert "1.4x More" in text
    assert "NA" in text


def test_variant_label():
    assert table5.variant_label("Fixed-Point (8,8)", "alex+") == "Fixed-Point+ (8,8)"
    assert (
        table5.variant_label("Powers of Two (6,16)", "alex++")
        == "Powers of Two++ (6,16)"
    )
    assert table5.variant_label("Binary Net (1,16)", "alex") == "Binary Net (1,16)"


def test_fig4_points_and_frontier(runner, table5_results):
    result = fig4.run(runner=runner)
    assert result["points"], "need at least some converged points"
    frontier = result["frontier"]
    assert frontier
    energies = [p.energy_uj for p in frontier]
    assert energies == sorted(energies)
    # frontier accuracy is non-decreasing along increasing energy
    accuracies = [p.accuracy for p in frontier]
    assert accuracies == sorted(accuracies)


def test_fig4_formatting(runner):
    text = fig4.format_results(fig4.run(runner=runner))
    assert "Figure 4" in text
    assert "Pareto frontier:" in text
