"""Experiment CLI tests (hardware-only paths; trained paths are
exercised by the benchmark harness)."""

import pytest

from repro.experiments.__main__ import main


def test_cli_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert "Binary Net (1,16)" in out


def test_cli_fig3(capsys):
    assert main(["fig3"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_cli_memory(capsys):
    assert main(["memory"]) == 0
    out = capsys.readouterr().out
    assert "alex++" in out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["resnet"])
