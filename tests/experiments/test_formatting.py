"""ASCII formatting helper tests."""

from repro.experiments.formatting import format_bar_chart, format_scatter, format_table


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["a", 1], ["longer", 22]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    # all data rows have equal width
    assert len(lines[3]) == len(lines[4])


def test_format_table_empty_rows():
    text = format_table(["a"], [])
    assert "a" in text


def test_bar_chart_totals_and_legend():
    series = {
        "float": {"memory": 12.0, "logic": 4.0},
        "binary": {"memory": 1.0, "logic": 0.2},
    }
    text = format_bar_chart(series, "Area")
    assert "16.00" in text
    assert "1.20" in text
    assert "legend" in text
    assert "#=memory" in text


def test_bar_chart_bar_lengths_proportional():
    series = {"big": {"x": 100.0}, "small": {"x": 10.0}}
    lines = format_bar_chart(series, "v", width=40).splitlines()
    big_bar = lines[1].count("#")
    small_bar = lines[2].count("#")
    assert big_bar == 40
    assert small_bar == 4


def test_scatter_contains_markers_and_labels():
    points = [
        {"label": "a", "x": 10.0, "y": 80.0, "m": "o"},
        {"label": "b", "x": 100.0, "y": 90.0, "m": "x"},
    ]
    text = format_scatter(points, "x", "y", "label", marker_key="m")
    assert "o" in text and "x" in text
    assert "a" in text and "b" in text


def test_scatter_empty():
    assert format_scatter([], "x", "y", "label") == "(no points)"


def test_scatter_single_point_no_crash():
    text = format_scatter([{"label": "solo", "x": 5.0, "y": 1.0}], "x", "y", "label")
    assert "solo" in text
