"""Exception hierarchy tests."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ConfigurationError",
        "ShapeError",
        "QuantizationError",
        "HardwareModelError",
        "TrainingError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)
        assert issubclass(cls, Exception)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.ShapeError("bad shape")
    with pytest.raises(errors.ReproError):
        raise errors.HardwareModelError("bad config")


def test_subclasses_are_distinct():
    assert not issubclass(errors.ShapeError, errors.ConfigurationError)
    assert not issubclass(errors.QuantizationError, errors.ShapeError)
