"""Per-layer quantization sensitivity — the paper's future-work analysis.

Trains a small CNN, then (a) statically ranks its weight tensors by
signal-to-quantization-noise ratio and (b) empirically measures the
accuracy drop of quantizing each layer in isolation, showing how well
the static predictor anticipates the empirical ranking.  This is the
analysis the paper proposes for "effectively predicting the lower
precision accuracy", and it directly surfaces range problems like the
one the paper hit on ALEX++ (8,8).

Run:  python examples/sensitivity_analysis.py
"""

import numpy as np

from repro import core, nn
from repro.data import load_dataset
from repro.experiments.formatting import format_table
from repro.zoo import build_network


def main() -> None:
    split = load_dataset("digits", n_train=1200, n_test=400, seed=0)
    network = build_network("lenet_small", seed=0)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.02, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=5)
    baseline = trainer.evaluate(split.test.images, split.test.labels)["accuracy"]
    print(f"float32 test accuracy: {100 * baseline:.2f}%\n")

    for key in ("fixed4", "binary"):
        spec = core.get_precision(key)
        report = {s.name: s for s in core.quantization_report(network, spec)}
        drops = core.layerwise_sensitivity(
            network, spec, split.test.images, split.test.labels
        )
        rows = [
            [
                name,
                f"{report[name].size}",
                f"{report[name].max_abs:.3f}",
                f"{report[name].sqnr_db:.1f}",
                f"{100 * drop:.2f}",
            ]
            for name, drop in sorted(drops.items(), key=lambda kv: -kv[1])
        ]
        print(format_table(
            ["weight tensor", "size", "max |w|", "SQNR dB", "acc drop %"],
            rows,
            title=f"Layer sensitivity at {spec.label}",
        ))
        predicted = core.predicted_risk_ranking(network, spec)[0]
        measured = core.most_sensitive_layer(
            network, spec, split.test.images, split.test.labels
        )
        print(f"  static predictor says riskiest: {predicted}")
        print(f"  measurement says most damaged:  {measured}\n")


if __name__ == "__main__":
    main()
