"""Sweep every paper precision on one task and print a Table IV-style row set.

Reproduces the Section V protocol end to end for a single network:
train float32, then for each precision warm-start + QAT fine-tune +
quantized evaluation, pairing each accuracy with the hardware model's
per-image energy.

Run:  python examples/precision_sweep.py [digits|svhn|cifar]
"""

import sys

from repro import core, hw
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.experiments.formatting import format_table
from repro.zoo import build_network, network_info

PROXIES = {"digits": "lenet_small", "svhn": "convnet_small", "cifar": "alex_small"}
PAPER_NETWORKS = {"digits": "lenet", "svhn": "convnet", "cifar": "alex"}


def main(task: str = "digits") -> None:
    trained_name = PROXIES[task]
    paper_name = PAPER_NETWORKS[task]
    split = load_dataset(task, n_train=1500, n_test=400, seed=0)

    print(f"task={task}: training {trained_name!r} at every precision "
          f"(energy modelled on {paper_name!r})...")
    sweep = PrecisionSweep(
        builder=lambda: build_network(trained_name, seed=0),
        split=split,
        config=SweepConfig(),
    )
    results = sweep.run()

    info = network_info(paper_name)
    paper_net = build_network(paper_name)
    energy_model = hw.EnergyModel()
    baseline_energy = energy_model.evaluate(
        paper_net, info.input_shape, core.PAPER_PRECISIONS[0]
    )

    rows = []
    for result in results:
        energy = energy_model.evaluate(paper_net, info.input_shape, result.spec)
        if result.converged:
            rows.append([
                result.spec.label,
                f"{result.accuracy_percent:.2f}",
                f"{energy.energy_uj:.2f}",
                f"{energy.savings_vs(baseline_energy):.2f}",
            ])
        else:
            rows.append([result.spec.label, "NA", "NA", "NA"])

    print()
    print(format_table(
        ["Precision (w,in)", "Acc %", "Energy uJ", "Energy Sav %"],
        rows,
        title=f"Precision sweep on the {task} task",
    ))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "digits")
