"""Explore the accelerator design space: synthesis-style reports.

Prints a Design-Compiler-style area/power report for each precision
(Table III / Figure 3 data), then shows how the design scales with
tile geometry and buffer sizing — the dimensions the paper holds
constant ("changing the frequency or the accelerator parameters ...
adds another dimension ... out of the scope of our work").

Run:  python examples/accelerator_designer.py
"""

from repro import hw
from repro.core.precision import PAPER_PRECISIONS
from repro.experiments.formatting import format_table
from repro.hw.accelerator import Accelerator, AcceleratorConfig


def main() -> None:
    # 1. Per-precision synthesis reports (Table III / Figure 3).
    for spec in PAPER_PRECISIONS:
        accelerator = Accelerator(spec)
        print(hw.synthesis_report(accelerator))
        print()

    # 2. Tile-geometry scaling at fixed-point (16,16).
    spec = next(s for s in PAPER_PRECISIONS if s.key == "fixed16")
    rows = []
    for neurons, synapses in [(8, 8), (16, 16), (32, 16), (32, 32)]:
        config = AcceleratorConfig(neurons=neurons, synapses=synapses)
        accelerator = Accelerator(spec, config=config)
        rows.append([
            f"{neurons}x{synapses}",
            f"{neurons * synapses}",
            f"{accelerator.area_mm2:.2f}",
            f"{accelerator.power_mw:.1f}",
        ])
    print(format_table(
        ["tile", "MACs/cycle", "area mm2", "power mW"],
        rows,
        title="Tile-geometry scaling at Fixed-Point (16,16)",
    ))
    print()

    # 3. Buffer-capacity scaling: the memory subsystem dominates, so
    #    halving SB capacity nearly halves the whole design.
    rows = []
    for sb_words in [16384, 32768, 65536, 131072]:
        config = AcceleratorConfig(weight_buffer_words=sb_words)
        accelerator = Accelerator(spec, config=config)
        fractions = accelerator.memory_fraction()
        rows.append([
            f"{sb_words // 1024}K weights",
            f"{accelerator.area_mm2:.2f}",
            f"{accelerator.power_mw:.1f}",
            f"{fractions['area']:.1%}",
        ])
    print(format_table(
        ["SB capacity", "area mm2", "power mW", "buffer area share"],
        rows,
        title="Weight-buffer scaling at Fixed-Point (16,16)",
    ))


if __name__ == "__main__":
    main()
