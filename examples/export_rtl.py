"""Export synthesizable Verilog for the NFU at each precision.

Writes one ``.v`` file per non-float precision into ``rtl_out/`` —
the weight-block variant of Figure 2 (a-c), the per-neuron adder tree,
the ReLU stage and the registered top module — ready to drop into a
synthesis flow to cross-check the analytical area model.

Run:  python examples/export_rtl.py [output_dir]
"""

import os
import sys

from repro import hw
from repro.core.precision import PAPER_PRECISIONS
from repro.hw.nfu import NfuGeometry


def main(output_dir: str = "rtl_out") -> None:
    os.makedirs(output_dir, exist_ok=True)
    geometry = NfuGeometry(neurons=16, synapses=16)
    for spec in PAPER_PRECISIONS:
        if spec.is_float:
            continue  # FP32 uses vendor FPU IP, not generated RTL
        source = hw.generate_nfu(spec, geometry)
        path = os.path.join(output_dir, f"nfu_{spec.key}.v")
        with open(path, "w") as handle:
            handle.write(source)
        modules = source.count("module ") - source.count("endmodule")
        assert modules == 0
        print(f"{path}: {len(source.splitlines())} lines, "
              f"{source.count('u_wb_')} weight blocks")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "rtl_out")
