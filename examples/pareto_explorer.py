"""Figure 4 style exploration: grow the network to buy back accuracy.

Trains the CIFAR-role proxy family (alex_small / + / ++) at several
precisions, pairs each with the paper-architecture energy model, and
prints the accuracy-vs-energy scatter with its Pareto frontier — the
paper's Section IV-B argument in one script.

Run:  python examples/pareto_explorer.py          (about 10-15 minutes)
      python examples/pareto_explorer.py --fast   (fewer precisions)
"""

import sys

from repro import core, hw
from repro.core.pareto import DesignPoint, pareto_frontier
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.experiments.formatting import format_scatter
from repro.zoo import build_network, network_info

FAMILY = [("alex", "alex_small"), ("alex+", "alex_small+"), ("alex++", "alex_small++")]


def main(fast: bool = False) -> None:
    precisions = ["float32", "pow2", "binary"] if fast else [
        "float32", "fixed16", "fixed8", "pow2", "binary",
    ]
    split = load_dataset("cifar", n_train=1500, n_test=400, seed=0)
    energy_model = hw.EnergyModel()
    points = []

    for paper_name, proxy_name in FAMILY:
        print(f"sweeping {proxy_name} ({len(precisions)} precisions)...")
        sweep = PrecisionSweep(
            builder=lambda name=proxy_name: build_network(name, seed=0),
            split=split,
            config=SweepConfig(),
        )
        info = network_info(paper_name)
        paper_net = build_network(paper_name)
        for key in precisions:
            spec = core.get_precision(key)
            if paper_name != "alex" and spec.key in ("float32", "fixed32"):
                continue  # the paper only enlarges low-precision nets
            result = sweep.run_precision(spec)
            if not result.converged:
                print(f"  {spec.label} on {paper_name}: did not converge (NA)")
                continue
            energy = energy_model.evaluate(paper_net, info.input_shape, spec)
            suffix = paper_name[len("alex"):]
            points.append(DesignPoint(
                label=f"{spec.label}{suffix}",
                accuracy=result.accuracy_percent,
                energy_uj=energy.energy_uj,
                metadata={"network": paper_name, "precision": key},
            ))

    frontier = pareto_frontier(points)
    frontier_labels = {p.label for p in frontier}
    scatter = [
        {
            "label": p.label + (" *" if p.label in frontier_labels else ""),
            "energy": p.energy_uj,
            "accuracy": p.accuracy,
            "marker": {"alex": "o", "alex+": "+", "alex++": "x"}[
                p.metadata["network"]
            ],
        }
        for p in points
    ]
    print()
    print("accuracy (%) vs energy (uJ, log scale); * marks the Pareto frontier")
    print(format_scatter(scatter, "energy", "accuracy", "label",
                         marker_key="marker", log_x=True))

    baseline = next(
        (p for p in points if p.metadata == {"network": "alex",
                                             "precision": "float32"}), None,
    )
    if baseline:
        winners = [
            p.label for p in points
            if p.accuracy >= baseline.accuracy and p.energy_uj < baseline.energy_uj
        ]
        if winners:
            print(f"\ndominating the float32 baseline: {', '.join(winners)}")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
