"""Memory footprints and per-layer energy attribution.

Prints the Section V-B parameter-memory table for all five paper
networks, then breaks one network's inference energy down per layer —
useful when deciding which layers to quantize more aggressively.

Run:  python examples/memory_and_reports.py
"""

from repro import core, hw
from repro.experiments import memory
from repro.experiments.formatting import format_table
from repro.zoo import build_network, network_info


def main() -> None:
    # 1. Section V-B parameter-memory analysis.
    print(memory.format_results(memory.run()))
    print()

    # 2. Per-layer energy attribution for ALEX at two precisions.
    info = network_info("alex")
    network = build_network("alex")
    model = hw.EnergyModel()
    float_report = model.evaluate(network, info.input_shape,
                                  core.get_precision("float32"))
    fixed_report = model.evaluate(network, info.input_shape,
                                  core.get_precision("fixed8"))
    rows = []
    for f_layer, q_layer in zip(float_report.layers, fixed_report.layers):
        rows.append([
            f_layer.name,
            f"{f_layer.cycles}",
            f"{f_layer.energy_uj:.2f}",
            f"{q_layer.energy_uj:.2f}",
            f"{100 * (1 - q_layer.energy_uj / f_layer.energy_uj):.1f}%",
        ])
    rows.append([
        "total",
        f"{float_report.total_cycles}",
        f"{float_report.energy_uj:.2f}",
        f"{fixed_report.energy_uj:.2f}",
        f"{100 * (1 - fixed_report.energy_uj / float_report.energy_uj):.1f}%",
    ])
    print(format_table(
        ["layer", "cycles", "float32 uJ", "fixed8 uJ", "saving"],
        rows,
        title="ALEX per-layer inference energy (65nm tile accelerator)",
    ))


if __name__ == "__main__":
    main()
