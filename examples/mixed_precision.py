"""Mixed per-layer precision — the paper's future-work extension.

Runs the greedy sensitivity-driven bit allocator on a trained network:
starting from uniform 16-bit weights, it narrows the least-sensitive
layers to 8 and then 4 bits while keeping accuracy within a 2 % budget,
and reports the parameter-memory savings relative to the uniform
assignments.

Run:  python examples/mixed_precision.py
"""

import numpy as np

from repro import core, nn
from repro.core.mixed_precision import (
    MixedPrecisionNetwork,
    assignment_weight_kb,
    greedy_bit_allocation,
)
from repro.experiments.formatting import format_table
from repro.data import load_dataset
from repro.zoo import build_network


def main() -> None:
    split = load_dataset("digits", n_train=1200, n_test=400, seed=0)
    network = build_network("lenet_small", seed=0)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.02, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=5)
    baseline = trainer.evaluate(split.test.images, split.test.labels)["accuracy"]
    print(f"float32 accuracy: {100 * baseline:.2f}%\n")

    candidates = [
        core.get_precision("fixed16"),
        core.get_precision("fixed8"),
        core.get_precision("fixed4"),
    ]
    assignment, trace = greedy_bit_allocation(
        network,
        split.test.images[:200],
        split.test.labels[:200],
        candidates=candidates,
        max_accuracy_drop=0.02,
        calibration_images=split.train.images[:128],
    )

    print(format_table(
        ["step", "narrowed tensor", "new precision", "accuracy %", "weights KB"],
        [
            [str(i), step["tensor"] or "(start)", step["precision"],
             f"{100 * step['accuracy']:.2f}", f"{step['weight_kb']:.1f}"]
            for i, step in enumerate(trace)
        ],
        title="Greedy bit-allocation trace",
    ))

    mixed = MixedPrecisionNetwork(network, assignment)
    mixed.calibrate(split.train.images[:128])
    final = mixed.evaluate(split.test.images, split.test.labels)
    uniform16 = assignment_weight_kb(
        network,
        {p.name: candidates[0] for p in network.weight_parameters()},
    )
    print()
    print(mixed.describe())
    print(f"\nfinal mixed-precision accuracy: {100 * final:.2f}% "
          f"(budget: {100 * (baseline - 0.02):.2f}%)")
    print(f"weights: {assignment_weight_kb(network, assignment):.1f} KB "
          f"vs uniform 16-bit {uniform16:.1f} KB")


if __name__ == "__main__":
    main()
