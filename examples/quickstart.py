"""Quickstart: train, quantize, and measure energy in ~60 lines.

Trains a small CNN on the synthetic digits task, fine-tunes an 8-bit
fixed-point version with quantization-aware training, and reports the
accuracy/energy trade-off on the paper's 65 nm accelerator model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import core, hw, nn
from repro.data import load_dataset
from repro.zoo import build_network, network_info

SEED = 0


def main() -> None:
    # 1. Data: the MNIST-role synthetic task (28x28 grayscale digits).
    split = load_dataset("digits", n_train=1500, n_test=400, seed=SEED)
    print(f"dataset: {split.name}, {len(split.train)} train / "
          f"{len(split.val)} val / {len(split.test)} test")

    # 2. Train a full-precision baseline.
    network = build_network("lenet_small", seed=SEED)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.02, momentum=0.9, weight_decay=1e-4),
        batch_size=32,
        rng=np.random.default_rng(SEED),
    )
    trainer.fit(split.train.images, split.train.labels,
                split.val.images, split.val.labels, epochs=5, verbose=True)
    float_accuracy = trainer.evaluate(split.test.images, split.test.labels)["accuracy"]
    print(f"\nfloat32 test accuracy: {100 * float_accuracy:.2f}%")

    # 3. Quantization-aware fine-tuning at fixed-point (8,8).
    spec = core.get_precision("fixed8")
    qnet = core.QuantizedNetwork(network, spec)
    qnet.calibrate(split.train.images[:256])
    qat = core.QATTrainer(
        qnet,
        nn.SGD(network.parameters(), lr=0.005, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(SEED + 1),
    )
    qat.fit(split.train.images, split.train.labels, epochs=2)
    quant_accuracy = qnet.evaluate(split.test.images, split.test.labels)
    print(f"{spec.label} test accuracy: {100 * quant_accuracy:.2f}%")

    # 4. Hardware: per-image energy on the paper's LeNet at both precisions.
    info = network_info("lenet")
    paper_net = build_network("lenet")
    energy_model = hw.EnergyModel()
    baseline = energy_model.evaluate(paper_net, info.input_shape,
                                     core.get_precision("float32"))
    quantized = energy_model.evaluate(paper_net, info.input_shape, spec)
    print(f"\nLeNet inference energy on the 65nm tile accelerator:")
    print(f"  float32      : {baseline.energy_uj:7.2f} uJ/image "
          f"({baseline.power_mw:.0f} mW, {baseline.runtime_us:.1f} us)")
    print(f"  {spec.label}: {quantized.energy_uj:7.2f} uJ/image "
          f"({quantized.power_mw:.0f} mW, {quantized.runtime_us:.1f} us)")
    print(f"  energy saving: {quantized.savings_vs(baseline):.2f}%  "
          f"(paper Table IV: 85.41%)")


if __name__ == "__main__":
    main()
