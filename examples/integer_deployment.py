"""Deployment check: run the quantized network on a true integer datapath.

Trains a small CNN, calibrates an 8-bit fixed-point version, then runs
the same test set through (a) the float quantization emulation and
(b) the bit-exact integer pipeline (`IntegerInference`) — the
arithmetic the accelerator actually performs.  The two must agree,
which is the guarantee that the emulated accuracies in Tables IV/V
carry over to hardware.

Run:  python examples/integer_deployment.py
"""

import numpy as np

from repro import core, nn
from repro.core.integer_network import IntegerInference
from repro.data import load_dataset
from repro.zoo import build_network


def main() -> None:
    split = load_dataset("digits", n_train=1200, n_test=400, seed=0)
    network = build_network("lenet_small", seed=0)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.02, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=5)

    spec = core.get_precision("fixed8")
    qnet = core.QuantizedNetwork(network, spec)
    qnet.calibrate(split.train.images[:256])

    emulated_logits = qnet.predict(split.test.images)
    emulated_accuracy = nn.accuracy(emulated_logits, split.test.labels)

    integer = IntegerInference(qnet)
    integer_logits = integer.predict(split.test.images)
    integer_accuracy = integer.evaluate(split.test.images, split.test.labels)

    agreement = float(np.mean(
        emulated_logits.argmax(axis=1) == integer_logits.argmax(axis=1)
    ))
    max_logit_gap = float(np.max(np.abs(emulated_logits - integer_logits)))

    print(f"precision:              {spec.label}")
    print(f"emulated accuracy:      {100 * emulated_accuracy:.2f}%")
    print(f"integer accuracy:       {100 * integer_accuracy:.2f}%")
    print(f"prediction agreement:   {100 * agreement:.2f}%")
    print(f"max logit discrepancy:  {max_logit_gap:.6f}")
    print("\nThe integer pipeline (what the accelerator computes) matches")
    print("the float emulation the study uses — the accuracy columns of")
    print("Tables IV/V are deployable numbers, not emulation artifacts.")


if __name__ == "__main__":
    main()
