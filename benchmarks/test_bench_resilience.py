"""Benchmark: resilience-layer overhead with chaos disabled.

The resilience layer's acceptance bar is that, with nothing armed, its
hooks on the serve hot path — the ``engine.forward`` fire/corrupt
sites, deadline bookkeeping and degrade routing — cost less than 2% of
per-request latency.  Timing two full load runs against each other
cannot resolve 2% on a shared runner, so the number is measured
directly: the per-call cost of every disabled hook, times one call per
request (an overestimate: fire/corrupt run once per *batch*), against
the measured per-request service time of a no-chaos run.  A second
load run with deadlines attached guards the deadline-eviction scan
against accidental blowups.
"""

import time

import numpy as np

from repro.data import load_dataset
from repro.resilience import FaultInjector
from repro.serve import InferenceServer, ModelStore, run_closed_loop

from benchmarks.conftest import save_result

N_REQUESTS = 192
CONCURRENCY = 64
WORKERS = 4
MICRO_ITERS = 20_000


def _measure(store, images, deadline_ms):
    server = InferenceServer(
        store,
        workers=WORKERS,
        max_batch_size=32,
        max_delay_ms=2.0,
        max_queue_depth=512,
    )
    with server:
        outcome = run_closed_loop(
            server,
            images,
            "lenet_small",
            "fixed8",
            n_requests=N_REQUESTS,
            concurrency=CONCURRENCY,
            deadline_ms=deadline_ms,
        )
    report = outcome.report
    assert outcome.client_errors == 0 and outcome.lost == 0
    assert report.completed == N_REQUESTS
    assert report.deadline_expired == 0
    return report


def test_bench_resilience_overhead(results_dir):
    split = load_dataset("digits", n_train=128, n_test=128, seed=0)
    store = ModelStore(calibration_data={"digits": split.train.images})
    store.warm("lenet_small", "fixed8")

    plain = _measure(store, split.test.images, deadline_ms=None)
    deadlined = _measure(store, split.test.images, deadline_ms=60_000.0)

    # per-call cost of the disabled hooks exactly as the worker runs them
    injector = FaultInjector()  # nothing armed: the serving default
    logits = np.zeros((32, 5), dtype=np.float32)
    started = time.perf_counter()
    for _ in range(MICRO_ITERS):
        injector.fire("engine.forward")
        injector.corrupt("engine.forward", logits)
    hook_ms = (time.perf_counter() - started) / MICRO_ITERS * 1e3
    overhead_pct = 100.0 * hook_ms / plain.latency_ms_mean

    lines = [
        "Resilience-layer overhead, chaos disabled "
        f"({N_REQUESTS} requests, {WORKERS} workers)",
        "",
        f"mean latency, no deadlines   : {plain.latency_ms_mean:.3f} ms",
        f"mean latency, 60 s deadlines : {deadlined.latency_ms_mean:.3f} ms",
        f"disabled fire+corrupt        : {1e3 * hook_ms:.3f} us/call",
        f"hook overhead per request    : {overhead_pct:.4f} %",
    ]
    save_result(results_dir, "resilience.txt", "\n".join(lines))

    # the acceptance criterion: < 2% latency overhead with chaos off
    assert overhead_pct < 2.0, (
        f"disabled hooks cost {overhead_pct:.2f}% of request latency"
    )
    # deadline bookkeeping must stay in the same ballpark (generous
    # bound: catches an accidentally quadratic eviction scan, not noise)
    assert deadlined.latency_ms_mean < 5.0 * max(plain.latency_ms_mean, 1.0)
