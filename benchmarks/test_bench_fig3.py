"""Benchmark: regenerate Figure 3 (area / power breakdown stacks)."""

from repro.experiments import fig3
from benchmarks.conftest import save_result


def test_bench_fig3(benchmark, results_dir):
    records = benchmark.pedantic(fig3.run, rounds=3, iterations=1)
    text = fig3.format_results(records)
    save_result(results_dir, "fig3.txt", text)

    assert len(records) == 7
    for record in records:
        # Section V-B buffer-domination claim, the figure's headline
        assert 0.75 <= record["memory_area_fraction"] <= 0.965
        assert 0.74 <= record["memory_power_fraction"] <= 0.935
        breakdown = record["breakdown"]
        assert breakdown["memory"]["area_mm2"] > breakdown["combinational"]["area_mm2"]
