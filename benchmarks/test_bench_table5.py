"""Benchmark: regenerate Table V (CIFAR-role ALEX / ALEX+ / ALEX++).

The paper's headline claim: enlarging a low-precision network recovers
the accuracy lost to quantization while retaining energy savings over
the full-precision baseline.
"""

from repro.experiments import table5
from benchmarks.conftest import save_result


def test_bench_table5(benchmark, runner, results_dir):
    points = benchmark.pedantic(
        table5.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    text = table5.format_results(points)
    save_result(results_dir, "table5.txt", text)

    by_row = {(p.spec.key, p.network): p for p in points}
    baseline = by_row[("float32", "alex")]
    assert baseline.accuracy > 0.35  # the hard task is genuinely learnable

    # enlarging a low-precision network must improve its accuracy
    for key in ("fixed16", "pow2", "binary"):
        small = by_row[(key, "alex")]
        plus_plus = by_row[(key, "alex++")]
        if small.converged and plus_plus.converged:
            assert plus_plus.accuracy >= small.accuracy - 0.02, key

    # enlarged low-precision nets still save energy vs. float32 ALEX
    for key in ("fixed8", "pow2", "binary"):
        assert by_row[(key, "alex++")].energy_saving_pct > 0, key
        assert by_row[(key, "alex+")].energy_saving_pct > 0, key

    # ...but enlarged 16-bit networks spend MORE (the paper's "x More")
    assert by_row[("fixed16", "alex+")].energy_saving_pct < 0
    assert by_row[("fixed16", "alex++")].energy_saving_pct < 0

    # at least one enlarged low-precision point recovers (or beats) the
    # float32 baseline accuracy while saving energy — the Table V story
    recovered = [
        p for p in points
        if p.network != "alex" and p.converged
        and p.spec.key in ("fixed8", "pow2", "binary")
        and p.accuracy >= baseline.accuracy - 0.03
        and p.energy_saving_pct > 0
    ]
    assert recovered, "no enlarged low-precision point recovered accuracy"
