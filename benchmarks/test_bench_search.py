"""Benchmark: mixed-precision search wall time and warm-cache resume.

Runs one cold two-generation search on the tiny task, then replays it
(``resume=True``) against the warm salted cache and asserts at least
90% of evaluations are served without retraining and the frontiers are
bitwise identical.  Machine-readable metrics land in
``results/search.json`` for ``benchmarks/compare.py``.
"""

import json
import os
import time

from repro.core.sweep import SweepConfig
from repro.search import PrecisionSearch, SearchConfig, SearchSpace

from benchmarks.conftest import save_result

SEED = 0
BUDGET_UJ = 50.0


def _make_config():
    return SearchConfig(
        space=SearchSpace(
            task="lenet_small",
            width_choices=(0.5, 1.0),
            weight_bit_choices=(2, 4, 8),
        ),
        generations=2,
        population=3,
        survivors=3,
        energy_budget_uj=BUDGET_UJ,
        seed=SEED,
        sweep=SweepConfig(float_epochs=1, qat_epochs=1, seed=SEED),
        n_train=256,
        n_test=96,
    )


def test_bench_search(results_dir, tmp_path):
    cache_dir = str(tmp_path / "search-cache")

    started = time.perf_counter()
    cold = PrecisionSearch(_make_config(), cache=cache_dir).run()
    t_cold = time.perf_counter() - started

    started = time.perf_counter()
    warm = PrecisionSearch(_make_config(), cache=cache_dir).run(resume=True)
    t_warm = time.perf_counter() - started

    assert [(p.label, p.accuracy, p.energy_uj) for p in warm.frontier] == [
        (p.label, p.accuracy, p.energy_uj) for p in cold.frontier
    ]
    requests = warm.cache_hits + warm.cache_misses
    hit_rate = warm.cache_hits / requests if requests else 0.0
    assert hit_rate >= 0.9, (
        f"warm search cache served only {warm.cache_hits}/{requests} points"
    )
    assert cold.dominates_fixed_grid

    payload = {
        "schema": 1,
        "task": "lenet_small",
        "evaluated": len(cold.evaluated),
        "frontier": len(cold.frontier),
        "dominating": len(cold.dominating),
        "t_cold_s": round(t_cold, 4),
        "t_warm_s": round(t_warm, 4),
        "cache_hit_rate": round(hit_rate, 4),
    }
    with open(os.path.join(results_dir, "search.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    save_result(results_dir, "search.txt", "\n".join([
        "Mixed-precision & width search benchmark (lenet_small, "
        f"budget {BUDGET_UJ:g} uJ)",
        f"  evaluated          : {payload['evaluated']} candidates",
        f"  frontier           : {payload['frontier']} point(s), "
        f"{payload['dominating']} dominating the fixed grid",
        f"  cold search        : {t_cold:.2f} s",
        f"  warm resume        : {t_warm:.2f} s",
        f"  warm cache hit rate: {100 * hit_rate:.0f}%",
    ]))
