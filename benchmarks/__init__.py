"""Benchmark harness package (pytest-benchmark).

One benchmark per table/figure of the paper plus ablations and kernel
micro-benchmarks.  Run with::

    pytest benchmarks/ --benchmark-only

Formatted tables are written to ``benchmarks/results/``.
"""
