"""Benchmark: regenerate Table III (accelerator design metrics).

Runs the full hardware model over the paper's seven precision points
and prints the model-vs-paper table.  Hardware-only — exact in every
mode.
"""

from repro.experiments import table3
from benchmarks.conftest import save_result


def test_bench_table3(benchmark, results_dir):
    rows = benchmark.pedantic(table3.run, rounds=3, iterations=1)
    text = table3.format_results(rows)
    save_result(results_dir, "table3.txt", text)

    by_key = {row["key"]: row for row in rows}
    # shape assertions: monotone savings down the fixed-point column,
    # binary cheapest overall, all rows within the model's fidelity
    assert by_key["binary"]["area_mm2"] == min(r["area_mm2"] for r in rows)
    fixed = [by_key[k]["power_mw"] for k in ("fixed32", "fixed16", "fixed8", "fixed4")]
    assert fixed == sorted(fixed, reverse=True)
    for row in rows:
        assert abs(row["area_error_pct"]) < 6.0
        assert abs(row["power_error_pct"]) < 13.0
