"""Benchmarks for the extension studies (the paper's future work).

1. Mixed per-layer precision: greedy bit allocation on the digits task
   (Section VI: "architectures which support multiple radix point
   locations between layers").
2. Accelerator design-space exploration: geometry x precision sweep
   (declared out of scope by the paper; provided here as an extension).
3. Stochastic rounding (Gupta et al.) vs round-to-nearest at 8 bits.
"""

import numpy as np

from repro import core, hw, nn
from repro.core.fixed_point import FixedPointQuantizer
from repro.core.mixed_precision import (
    assignment_weight_kb,
    greedy_bit_allocation,
)
from repro.data import load_dataset
from repro.zoo import build_network, network_info
from benchmarks.conftest import save_result


def _train(split, name="lenet_small", epochs=6):
    net = build_network(name, seed=0)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=epochs)
    return net


def test_bench_mixed_precision(benchmark, results_dir):
    split = load_dataset("digits", n_train=800, n_test=300, seed=0)
    net = _train(split)
    baseline = nn.accuracy(net.predict(split.test.images), split.test.labels)

    def run_allocation():
        return greedy_bit_allocation(
            net,
            split.test.images[:150],
            split.test.labels[:150],
            candidates=[
                core.get_precision("fixed16"),
                core.get_precision("fixed8"),
                core.get_precision("fixed4"),
            ],
            max_accuracy_drop=0.02,
            calibration_images=split.train.images[:128],
        )

    assignment, trace = benchmark.pedantic(run_allocation, rounds=1, iterations=1)
    uniform16_kb = assignment_weight_kb(
        net, {p.name: core.get_precision("fixed16") for p in net.weight_parameters()}
    )
    mixed_kb = assignment_weight_kb(net, assignment)
    lines = [
        f"Mixed-precision greedy allocation (digits, float acc {100*baseline:.2f}%):",
        f"  uniform fixed16 weights: {uniform16_kb:.1f} KB",
        f"  mixed assignment:        {mixed_kb:.1f} KB "
        f"({uniform16_kb / mixed_kb:.2f}x smaller)",
        "  final assignment:",
    ]
    lines += [f"    {name}: {spec.label}" for name, spec in sorted(assignment.items())]
    lines.append(f"  allocation steps: {len(trace) - 1}, "
                 f"final accuracy {100 * trace[-1]['accuracy']:.2f}%")
    save_result(results_dir, "extension_mixed_precision.txt", "\n".join(lines))

    assert mixed_kb < uniform16_kb          # some layer was narrowed
    assert trace[-1]["accuracy"] >= baseline - 0.02 - 1e-9


def test_bench_design_space(benchmark, results_dir):
    info = network_info("lenet")
    net = build_network("lenet")

    def run_sweep():
        candidates = hw.explore_design_space(net, info.input_shape)
        return candidates, hw.throughput_pareto(candidates)

    candidates, frontier = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"Design-space sweep on LeNet: {len(candidates)} candidates, "
        f"{len(frontier)} on the frontier:",
    ]
    lines += [
        f"  {c.label:28s} area {c.area_mm2:6.2f} mm2  "
        f"{c.images_per_second:9.0f} img/s  {c.energy_uj_per_image:7.2f} uJ"
        for c in frontier
    ]
    save_result(results_dir, "extension_design_space.txt", "\n".join(lines))

    assert len(candidates) == 35  # 7 precisions x 5 geometries
    assert frontier[0].precision.key == "binary"
    assert max(c.images_per_second for c in frontier) == max(
        c.images_per_second for c in candidates
    )


def test_bench_per_channel_quantization(benchmark, results_dir):
    """Per-channel vs per-tensor weight radix at 4 bits (post-training).

    Modern practice vs the paper's per-tensor scheme; per-channel must
    be at least as accurate because it never shares a radix between
    channels of different magnitude.
    """
    from repro.core.per_channel import PerChannelFixedPointQuantizer

    split = load_dataset("digits", n_train=800, n_test=300, seed=0)
    net = _train(split)

    def evaluate(per_channel: bool) -> float:
        if per_channel:
            quantizer = PerChannelFixedPointQuantizer(4)
        else:
            quantizer = None  # spec default: per-tensor
        qnet = core.QuantizedNetwork(
            net, core.get_precision("fixed4"), weight_quantizer=quantizer
        )
        qnet.calibrate(split.train.images[:128])
        return qnet.evaluate(split.test.images, split.test.labels)

    def run_ablation():
        return evaluate(False), evaluate(True)

    per_tensor, per_channel = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result(
        results_dir, "extension_per_channel.txt",
        f"Fixed-point (4,4) weight radix granularity (digits, no fine-tune):\n"
        f"  per-tensor radix (paper):  {100 * per_tensor:.2f}%\n"
        f"  per-channel radix:         {100 * per_channel:.2f}%",
    )
    assert per_channel >= per_tensor - 0.02


def test_bench_range_disparity(benchmark, results_dir):
    """Reproduce the paper's ALEX++ (8,8) observation: 'there is a
    significant difference in the range of parameter and feature map
    values and as a result, 8 bits fails to capture the necessary
    range.'  We measure the feature-map range disparity on the
    CIFAR-role ++ proxy and show per-layer radix placement absorbs it.
    """
    from repro.core.analysis import activation_range_report

    split = load_dataset("cifar", n_train=800, n_test=300, seed=0)
    net = _train(split, name="alex_small++", epochs=5)

    def run_analysis():
        qnet = core.QuantizedNetwork(net, core.get_precision("fixed8"))
        report = activation_range_report(qnet, split.train.images[:128])
        accuracy = qnet.evaluate(split.test.images, split.test.labels)
        return report, accuracy

    report, accuracy = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    ranges = {k: v for k, v in report.items() if v > 0}
    disparity = max(ranges.values()) / min(ranges.values())
    lines = [
        "Feature-map range disparity on the CIFAR-role ++ network:",
        *(f"  {name:<22} max|x| = {value:8.3f}" for name, value in ranges.items()),
        f"  disparity (max/min): {disparity:.1f}x",
        f"  fixed-point (8,8) accuracy with per-layer radix: {100 * accuracy:.2f}%",
    ]
    save_result(results_dir, "extension_range_disparity.txt", "\n".join(lines))

    # ranges differ across layers by a large factor — one global radix
    # could not represent them all at 8 bits (the paper's observation)
    assert disparity > 4.0
    # ...but per-layer radix placement (our default, and the paper's
    # proposed fix) keeps the network functional
    assert accuracy > 0.3


def test_bench_stochastic_rounding(benchmark, results_dir):
    """Gupta et al. stochastic rounding vs round-to-nearest at 4 bits,
    as a post-training comparison on the trained weights."""
    split = load_dataset("digits", n_train=800, n_test=300, seed=0)
    net = _train(split)

    def evaluate(stochastic: bool) -> float:
        quantizer = FixedPointQuantizer(
            4, stochastic_rounding=stochastic, rng=np.random.default_rng(7)
        )
        qnet = core.QuantizedNetwork(
            net, core.get_precision("fixed4"), weight_quantizer=quantizer
        )
        qnet.calibrate(split.train.images[:128])
        return qnet.evaluate(split.test.images, split.test.labels)

    def run_ablation():
        return evaluate(False), evaluate(True)

    nearest, stochastic = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result(
        results_dir, "extension_stochastic_rounding.txt",
        f"Fixed-point (4,4) post-training rounding comparison (digits):\n"
        f"  round-to-nearest:    {100 * nearest:.2f}%\n"
        f"  stochastic rounding: {100 * stochastic:.2f}%",
    )
    assert nearest > 0.5 and stochastic > 0.5
