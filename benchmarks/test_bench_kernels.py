"""Micro-benchmarks of the computational kernels.

These time the substrate itself (conv lowering, quantizer throughput,
quantized inference overhead) so performance regressions in the
framework are visible independently of the experiment harness.
"""

import numpy as np

from repro import core, nn
from repro.zoo import build_network


def test_bench_conv_forward(benchmark):
    rng = np.random.default_rng(0)
    conv = nn.Conv2D(32, 32, kernel_size=5, padding=2, rng=rng)
    conv.eval_mode()
    x = rng.standard_normal((8, 32, 16, 16)).astype(np.float32)
    out = benchmark(conv.forward, x)
    assert out.shape == (8, 32, 16, 16)


def test_bench_conv_backward(benchmark):
    rng = np.random.default_rng(0)
    conv = nn.Conv2D(16, 16, kernel_size=3, padding=1, rng=rng)
    x = rng.standard_normal((8, 16, 16, 16)).astype(np.float32)
    out = conv.forward(x)
    grad = np.ones_like(out)

    def backward():
        conv.zero_grad()
        return conv.backward(grad)

    result = benchmark(backward)
    assert result.shape == x.shape


def test_bench_fixed_point_quantizer(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 18).astype(np.float32)
    quantizer = core.FixedPointQuantizer(8)
    out = benchmark(quantizer.quantize, x)
    assert out.shape == x.shape


def test_bench_pow2_quantizer(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 18).astype(np.float32)
    quantizer = core.PowerOfTwoQuantizer(6)
    out = benchmark(quantizer.quantize, x)
    assert out.shape == x.shape


def test_bench_binary_quantizer(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 18).astype(np.float32)
    quantizer = core.BinaryQuantizer()
    out = benchmark(quantizer.quantize, x)
    assert out.shape == x.shape


def test_bench_quantized_inference_overhead(benchmark):
    """Quantized-forward emulation cost on the LeNet proxy."""
    rng = np.random.default_rng(0)
    net = build_network("lenet_small")
    qnet = core.QuantizedNetwork(net, core.get_precision("fixed8"))
    x = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
    qnet.calibrate(x)
    logits = benchmark(qnet.predict, x)
    assert logits.shape == (16, 10)


def test_bench_float_inference_baseline(benchmark):
    rng = np.random.default_rng(0)
    net = build_network("lenet_small")
    net.eval_mode()
    x = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
    logits = benchmark(net.predict, x)
    assert logits.shape == (16, 10)
