"""Micro-benchmarks of the computational kernels.

These time the substrate itself (conv lowering, quantizer throughput,
quantized inference overhead) so performance regressions in the
framework are visible independently of the experiment harness.

The fused-backend benchmarks additionally write
``results/kernels_fused.json`` (reference vs fused wall time and the
speedup ratio) for ``benchmarks/compare.py`` / the CI bench gate, and
assert the fused backend's >= 2x contract on the batched
quantized-inference workload.
"""

import json
import os
import time

import numpy as np

from repro import backends, core, nn
from repro.data import load_dataset
from repro.zoo import build_network, network_info


def test_bench_conv_forward(benchmark):
    rng = np.random.default_rng(0)
    conv = nn.Conv2D(32, 32, kernel_size=5, padding=2, rng=rng)
    conv.eval_mode()
    x = rng.standard_normal((8, 32, 16, 16)).astype(np.float32)
    out = benchmark(conv.forward, x)
    assert out.shape == (8, 32, 16, 16)


def test_bench_conv_backward(benchmark):
    rng = np.random.default_rng(0)
    conv = nn.Conv2D(16, 16, kernel_size=3, padding=1, rng=rng)
    x = rng.standard_normal((8, 16, 16, 16)).astype(np.float32)
    out = conv.forward(x)
    grad = np.ones_like(out)

    def backward():
        conv.zero_grad()
        return conv.backward(grad)

    result = benchmark(backward)
    assert result.shape == x.shape


def test_bench_fixed_point_quantizer(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 18).astype(np.float32)
    quantizer = core.FixedPointQuantizer(8)
    out = benchmark(quantizer.quantize, x)
    assert out.shape == x.shape


def test_bench_pow2_quantizer(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 18).astype(np.float32)
    quantizer = core.PowerOfTwoQuantizer(6)
    out = benchmark(quantizer.quantize, x)
    assert out.shape == x.shape


def test_bench_binary_quantizer(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(1 << 18).astype(np.float32)
    quantizer = core.BinaryQuantizer()
    out = benchmark(quantizer.quantize, x)
    assert out.shape == x.shape


def test_bench_quantized_inference_overhead(benchmark):
    """Quantized-forward emulation cost on the LeNet proxy."""
    rng = np.random.default_rng(0)
    net = build_network("lenet_small")
    qnet = core.QuantizedNetwork(net, core.get_precision("fixed8"))
    x = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
    qnet.calibrate(x)
    logits = benchmark(qnet.predict, x)
    assert logits.shape == (16, 10)


def test_bench_float_inference_baseline(benchmark):
    rng = np.random.default_rng(0)
    net = build_network("lenet_small")
    net.eval_mode()
    x = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
    logits = benchmark(net.predict, x)
    assert logits.shape == (16, 10)


def _fused_workload(network_name: str = "lenet", n_images: int = 256):
    info = network_info(network_name)
    split = load_dataset(info.dataset, n_train=64, n_test=n_images + 44, seed=0)
    qnet = core.QuantizedNetwork(build_network(network_name, seed=0), "fixed8")
    qnet.calibrate(split.train.images[:32])
    return qnet, split.test.images[:n_images]


def test_bench_fused_quantized_inference(benchmark):
    """Steady-state fused inference (workspaces warm after first call)."""
    qnet, images = _fused_workload()
    fused = backends.get("fused")
    with qnet.quantized_weights():
        logits = benchmark(fused.predict, qnet.pipeline, images, 64)
    assert logits.shape == (images.shape[0], 10)


def test_bench_fused_speedup_vs_reference(results_dir):
    """The fused backend's acceptance contract: >= 2x over reference on
    batched quantized inference, at bitwise-equal outputs."""
    qnet, images = _fused_workload()
    reference = backends.get("reference")
    fused = backends.get("fused")
    reps = 3
    with qnet.quantized_weights():
        expected = reference.predict(qnet.pipeline, images, batch_size=64)
        assert np.array_equal(
            expected, fused.predict(qnet.pipeline, images, batch_size=64)
        ), "speedup without parity is a non-result"
        walls = {}
        for name, impl in (("reference", reference), ("fused", fused)):
            started = time.perf_counter()
            for _ in range(reps):
                impl.predict(qnet.pipeline, images, batch_size=64)
            walls[name] = (time.perf_counter() - started) / reps

    speedup = walls["reference"] / walls["fused"]
    payload = {
        "network": "lenet",
        "images": int(images.shape[0]),
        "batch_size": 64,
        "reference_s": round(walls["reference"], 4),
        "fused_s": round(walls["fused"], 4),
        "speedup": round(speedup, 4),
    }
    with open(os.path.join(results_dir, "kernels_fused.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nfused vs reference: {walls['reference'] * 1e3:.1f} ms -> "
          f"{walls['fused'] * 1e3:.1f} ms ({speedup:.2f}x)")
    assert speedup >= 2.0, (
        f"fused backend must be >= 2x reference, measured {speedup:.2f}x"
    )
