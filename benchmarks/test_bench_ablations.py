"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. QAT vs post-training quantization (the paper's training-time
   technique vs naive quantization).
2. Dual weight sets (shadow) vs training directly on quantized weights
   (the zero-gradient problem Courbariaux et al. solve).
3. Range-driven radix placement vs a fixed radix point (why Ristretto-
   style analysis matters; cf. the paper's ALEX++ (8,8) range failure).
4. The merged two-stage NFU pipeline for binary nets (runtime effect).
"""

import numpy as np

from repro import core, hw, nn
from repro.core.fixed_point import FixedPointQuantizer
from repro.data import load_dataset
from repro.zoo import build_network, network_info
from benchmarks.conftest import save_result


def _train_float(split, epochs=6):
    net = build_network("lenet_small", seed=0)
    trainer = nn.Trainer(
        net, nn.SGD(net.parameters(), lr=0.02, momentum=0.9),
        batch_size=32, rng=np.random.default_rng(0),
    )
    trainer.fit(split.train.images, split.train.labels, epochs=epochs)
    return net


def _fresh_copy(net):
    copy = build_network("lenet_small", seed=0)
    nn.transfer_weights(net, copy)
    return copy


def test_bench_ablation_qat_vs_ptq(benchmark, results_dir):
    """QAT must beat naive post-training quantization at binary weights."""
    split = load_dataset("digits", n_train=800, n_test=300, seed=0)
    float_net = _train_float(split)
    spec = core.get_precision("binary")

    def run_ablation():
        ptq = core.post_training_quantize(
            _fresh_copy(float_net), spec, split.train.images[:128]
        )
        ptq_acc = ptq.evaluate(split.test.images, split.test.labels)

        qat_base = _fresh_copy(float_net)
        qnet = core.QuantizedNetwork(qat_base, spec)
        qnet.calibrate(split.train.images[:128])
        trainer = core.QATTrainer(
            qnet, nn.SGD(qat_base.parameters(), lr=0.01, momentum=0.9),
            batch_size=32, rng=np.random.default_rng(1),
        )
        trainer.fit(split.train.images, split.train.labels, epochs=3)
        qat_acc = qnet.evaluate(split.test.images, split.test.labels)
        return ptq_acc, qat_acc

    ptq_acc, qat_acc = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_qat_vs_ptq.txt",
        f"Ablation 1 (binary weights, digits task):\n"
        f"  post-training quantization: {100 * ptq_acc:.2f}%\n"
        f"  quantization-aware training: {100 * qat_acc:.2f}%",
    )
    assert qat_acc >= ptq_acc


def test_bench_ablation_shadow_weights(benchmark, results_dir):
    """Dual weight sets vs updating quantized weights directly.

    Without the full-precision shadow copy, small SGD updates are
    erased by re-quantization every step (the zero-gradient problem),
    so training cannot improve a binary network.
    """
    split = load_dataset("digits", n_train=800, n_test=300, seed=0)
    float_net = _train_float(split)
    spec = core.get_precision("binary")

    def train_variant(use_shadow: bool):
        base = _fresh_copy(float_net)
        qnet = core.QuantizedNetwork(base, spec)
        qnet.calibrate(split.train.images[:128])
        if use_shadow:
            after_step = qnet._restore_shadow
        else:
            # drop the shadow: quantization becomes permanent each step
            def after_step():
                qnet._shadow = None
        trainer = nn.Trainer(
            qnet.pipeline,
            nn.SGD(base.parameters(), lr=0.01, momentum=0.9),
            batch_size=32,
            rng=np.random.default_rng(1),
            before_step=qnet._swap_in_quantized,
            after_step=after_step,
        )
        trainer.fit(split.train.images, split.train.labels, epochs=3)
        if qnet._shadow is not None:  # defensive: leave a clean state
            qnet._restore_shadow()
        return qnet.evaluate(split.test.images, split.test.labels)

    def run_ablation():
        return train_variant(True), train_variant(False)

    shadow_acc, direct_acc = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_shadow_weights.txt",
        f"Ablation 2 (binary weights, digits task):\n"
        f"  dual weight sets (shadow):   {100 * shadow_acc:.2f}%\n"
        f"  quantized-only training:     {100 * direct_acc:.2f}%",
    )
    assert shadow_acc >= direct_acc


def test_bench_ablation_radix_placement(benchmark, results_dir):
    """Range-driven radix vs a fixed radix point at 8 bits.

    A fixed Q1.6 radix (range [-2, 2)) saturates the wide pre-ReLU
    feature maps, reproducing the range failure the paper observed on
    ALEX++ (8,8).
    """
    split = load_dataset("digits", n_train=800, n_test=300, seed=0)
    float_net = _train_float(split)
    spec = core.get_precision("fixed8")

    def evaluate_variant(dynamic: bool):
        base = _fresh_copy(float_net)
        if dynamic:
            qnet = core.QuantizedNetwork(base, spec)
        else:
            qnet = core.QuantizedNetwork(
                base, spec,
                weight_quantizer=FixedPointQuantizer(8, frac_bits=6),
                activation_factory=lambda: FixedPointQuantizer(8, frac_bits=6),
            )
        qnet.calibrate(split.train.images[:128])
        return qnet.evaluate(split.test.images, split.test.labels)

    def run_ablation():
        return evaluate_variant(True), evaluate_variant(False)

    dynamic_acc, fixed_acc = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result(
        results_dir, "ablation_radix.txt",
        f"Ablation 3 (fixed-point (8,8), digits task, no fine-tuning):\n"
        f"  range-driven radix (Ristretto-style): {100 * dynamic_acc:.2f}%\n"
        f"  fixed Q1.6 radix:                     {100 * fixed_acc:.2f}%",
    )
    assert dynamic_acc >= fixed_acc


def test_bench_ablation_binary_pipeline(benchmark, results_dir):
    """Merged two-stage NFU for binary nets: per-layer latency saving."""
    info = network_info("lenet")
    net = build_network("lenet")

    def run_ablation():
        model = hw.EnergyModel()
        binary = model.evaluate(net, info.input_shape, core.get_precision("binary"))
        fixed = model.evaluate(net, info.input_shape, core.get_precision("fixed16"))
        return binary, fixed

    binary, fixed = benchmark.pedantic(run_ablation, rounds=3, iterations=1)
    layer_count = len(binary.layers)
    save_result(
        results_dir, "ablation_binary_pipeline.txt",
        f"Ablation 4 (LeNet):\n"
        f"  binary (merged 2-stage NFU): {binary.total_cycles} cycles\n"
        f"  fixed16 (3-stage NFU):       {fixed.total_cycles} cycles\n"
        f"  saved fill cycles:           {fixed.total_cycles - binary.total_cycles} "
        f"({layer_count} layers x 1 stage)",
    )
    assert fixed.total_cycles - binary.total_cycles == layer_count
