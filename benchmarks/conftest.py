"""Shared benchmark fixtures.

The accuracy sweeps (Tables IV/V, Figure 4) are trained once per
pytest session and shared across benchmarks; hardware-only experiments
are cheap and run inside their own benchmark loops.

Set ``REPRO_FULL=1`` to run the paper's exact architectures at full
training budgets instead of the quick proxy configuration.
"""

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepRunner

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig.from_environment()


@pytest.fixture(scope="session")
def runner(experiment_config) -> SweepRunner:
    return SweepRunner(experiment_config)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: str, name: str, text: str) -> None:
    """Persist a formatted table under benchmarks/results/ and echo it."""
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
