"""Benchmark: sharded fleet throughput scaling vs a single replica.

Serves the same closed-loop load through a 1-replica and a 4-replica
fleet and asserts the headline scaling claim: four replica processes
sustain at least 1.5x the img/s of one (process sharding buys real
parallelism on top of in-process batching because each replica runs
its forward passes in its own interpreter — no GIL sharing).

The scaling assertion, like ``parallel.speedup``, only runs on hosts
with >= 4 CPUs; a single-core container cannot run four forward passes
at once no matter how the work is sharded, so the whole benchmark
skips there.  Responses must be bitwise identical across fleet sizes —
sharding is a deployment knob, never an accuracy knob.

Machine-readable metrics land in ``results/fleet.json`` for
``benchmarks/compare.py`` / the CI bench job.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.data import load_dataset
from repro.serve import FleetConfig, FleetServer, run_closed_loop

from benchmarks.conftest import save_result

NETWORK = "lenet_small"
PRECISION = "fixed8"
N_REQUESTS = 256
CONCURRENCY = 64
MAX_BATCH = 8
CALIBRATION = 32
SEED = 0

pytestmark = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="fleet scaling needs >= 4 CPUs to mean anything",
)


def _measure(images, replicas):
    fleet = FleetServer(FleetConfig(
        replicas=replicas,
        max_batch_size=MAX_BATCH,
        warm=[(NETWORK, PRECISION)],
        calibration_images=CALIBRATION,
        seed=SEED,
    ))
    fleet.start()
    try:
        started = time.perf_counter()
        outcome = run_closed_loop(
            fleet, images, NETWORK, PRECISION,
            n_requests=N_REQUESTS, concurrency=CONCURRENCY,
        )
        wall = time.perf_counter() - started
    finally:
        fleet.stop()
    assert outcome.client_errors == 0
    assert outcome.lost == 0
    assert outcome.report.completed == N_REQUESTS
    assert fleet.restarts == 0
    # sample responses for the cross-size parity check
    rng = np.random.default_rng(1)
    probe = rng.normal(size=(1, 28, 28)).astype(np.float32)
    return N_REQUESTS / wall, outcome.report, probe


def _probe_logits(replicas, probe):
    fleet = FleetServer(FleetConfig(
        replicas=replicas,
        max_batch_size=MAX_BATCH,
        warm=[(NETWORK, PRECISION)],
        calibration_images=CALIBRATION,
        seed=SEED,
    ))
    fleet.start()
    try:
        futures = [
            fleet.submit(probe, NETWORK, PRECISION) for _ in range(replicas)
        ]
        return [future.result(timeout=60.0).logits for future in futures]
    finally:
        fleet.stop()


def test_bench_fleet(results_dir):
    split = load_dataset("digits", n_train=64, n_test=128, seed=SEED)
    images = split.test.images

    tput_1, report_1, probe = _measure(images, replicas=1)
    tput_4, report_4, _ = _measure(images, replicas=4)
    speedup = tput_4 / tput_1

    # every replica of every fleet size answers bitwise identically
    logits = _probe_logits(1, probe) + _probe_logits(4, probe)
    for other in logits[1:]:
        np.testing.assert_array_equal(logits[0], other)

    cpus = os.cpu_count() or 1
    payload = {
        "schema": 1,
        "network": NETWORK,
        "precision": PRECISION,
        "requests": N_REQUESTS,
        "cpu_count": cpus,
        "tput_1_ips": round(tput_1, 2),
        "tput_4_ips": round(tput_4, 2),
        "speedup": round(speedup, 4),
        "p99_1_ms": round(report_1.latency_ms_p99, 3),
        "p99_4_ms": round(report_4.latency_ms_p99, 3),
    }
    with open(os.path.join(results_dir, "fleet.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        f"Fleet scaling: {NETWORK} at {PRECISION}, {N_REQUESTS} requests, "
        f"concurrency {CONCURRENCY} ({cpus} CPUs)",
        "",
        f"{'fleet':<16} {'img/s':>10} {'p99 ms':>10}",
        f"{'1 replica':<16} {tput_1:>10.1f} {report_1.latency_ms_p99:>10.2f}",
        f"{'4 replicas':<16} {tput_4:>10.1f} {report_4.latency_ms_p99:>10.2f}",
        "",
        f"speedup (4/1):   {speedup:.2f}x",
        "responses bitwise-identical across fleet sizes: yes",
    ]
    save_result(results_dir, "fleet.txt", "\n".join(lines))

    assert speedup >= 1.5, (
        f"expected >= 1.5x throughput from 4 replicas on {cpus} CPUs, "
        f"got {speedup:.2f}x ({tput_1:.1f} -> {tput_4:.1f} img/s)"
    )
