"""Registry integration overhead: serving must not pay for the registry.

Two claims guard the serving fast path:

* the *disabled* path — serving a servable that never came from the
  registry — adds only the per-batch ``registry_digest is None`` check,
  and a generous overcount of that check stays under 2% of measured
  serving wall time;
* the *enabled* path — per-batch artifact accounting via
  ``ServerStats.record_artifact`` — stays similarly negligible.

A third section times the deployment swap itself: the locked
``ModelStore.install`` assignment must be orders of magnitude cheaper
than the background build it publishes.
"""

import time

from repro import registry
from repro.data import load_dataset
from repro.nn.serialization import network_state
from repro.serve import InferenceServer, ModelStore, run_closed_loop
from repro.serve.stats import ServerStats
from repro.zoo import build_network

from benchmarks.conftest import save_result

N_REQUESTS = 192
CONCURRENCY = 32
WORKERS = 4


def _serve_once(store, images):
    server = InferenceServer(
        store, workers=WORKERS, max_batch_size=32, max_delay_ms=2.0
    )
    start = time.perf_counter()
    with server:
        outcome = run_closed_loop(
            server, images, "lenet_small", "fixed8",
            n_requests=N_REQUESTS, concurrency=CONCURRENCY,
        )
    wall_s = time.perf_counter() - start
    assert outcome.client_errors == 0 and outcome.lost == 0
    return wall_s, outcome.report


def test_bench_registry(results_dir, tmp_path):
    split = load_dataset("digits", n_train=128, n_test=128, seed=0)
    store = ModelStore(calibration_data={"digits": split.train.images})
    plain = store.warm("lenet_small", "fixed8")
    assert plain.registry_digest is None
    serve_wall_s, report = _serve_once(store, split.test.images)

    # disabled path: the engine's only registry touch per batch
    rounds = 1_000_000
    start = time.perf_counter()
    for _ in range(rounds):
        plain.registry_digest is not None
    per_check_s = (time.perf_counter() - start) / rounds
    # every request its own batch would be the worst case; allow 10x
    generous_batches = 10 * N_REQUESTS
    disabled_overhead_s = per_check_s * generous_batches
    assert disabled_overhead_s < 0.02 * serve_wall_s, (
        f"disabled-path check {per_check_s * 1e9:.1f} ns x "
        f"{generous_batches} = {disabled_overhead_s * 1e3:.3f} ms vs "
        f"serve {serve_wall_s * 1e3:.0f} ms"
    )

    # enabled path: per-batch artifact accounting.  Worst case is one
    # batch per request; allow 2x that and still demand <2%.
    stats = ServerStats()
    rounds = 100_000
    start = time.perf_counter()
    for _ in range(rounds):
        stats.record_artifact("lenet_small@fixed8", "d" * 64, 1)
    per_record_s = (time.perf_counter() - start) / rounds
    enabled_overhead_s = per_record_s * 2 * N_REQUESTS
    assert enabled_overhead_s < 0.02 * serve_wall_s, (
        f"record_artifact {per_record_s * 1e6:.2f} us x {2 * N_REQUESTS} "
        f"= {enabled_overhead_s * 1e3:.3f} ms vs "
        f"serve {serve_wall_s * 1e3:.0f} ms"
    )

    # deployment swap: the locked install is ~free next to the build
    art_store = registry.ArtifactStore(str(tmp_path / "reg"))
    manifest = art_store.publish(
        network_state(build_network("lenet_small", seed=1)),
        network="lenet_small", precision="fixed8",
        dataset="digits", accuracy=0.9, energy_uj_per_image=1.3,
    )
    channel = registry.Channel(art_store, "prod")
    channel.promote(manifest.digest)
    rollout = registry.Deployer(art_store, store).rollout(channel)
    assert rollout.swap_ms < rollout.build_ms

    save_result(results_dir, "registry.txt", "\n".join([
        "Registry serving overhead (lenet_small @ fixed8, "
        f"{N_REQUESTS} requests)",
        "",
        f"serving wall            : {serve_wall_s * 1e3:8.1f} ms "
        f"({report.throughput_ips:.0f} img/s)",
        f"disabled-path check     : {per_check_s * 1e9:8.1f} ns/batch",
        f"artifact accounting     : {per_record_s * 1e6:8.2f} us/batch",
        f"rollout build           : {rollout.build_ms:8.1f} ms",
        f"rollout swap (locked)   : {rollout.swap_ms:8.3f} ms",
    ]))
