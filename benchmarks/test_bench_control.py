"""Benchmark: closed-loop controller — SLO attainment and disabled cost.

Two acceptance bars from the control subsystem:

* A server with **no** control loop installed must not pay for one.
  The hot-path additions are two branches in ``submit`` — the
  admission-gate check and the degrade-router call.  As with the
  resilience bench, a wall-clock A/B cannot resolve 2% on a shared
  runner, so the per-call cost of both hooks is measured directly and
  priced against the measured per-request latency of a plain run.

* Under the flash-crowd scenario, the autotuned arm must hold the
  (probe-calibrated) p99 SLO in a solid majority of control windows
  and lose no requests.  The attainment lands in
  ``results/control.json`` where ``compare.py`` gates it against the
  committed baseline.
"""

import json
import os
import time

from repro.control import (
    AutoTuner,
    KnobConfig,
    SLOPolicy,
    ScenarioRunner,
    TierLadder,
    TokenBucket,
    calibrate_slo,
    get_scenario,
)
from repro.data import load_dataset
from repro.serve import InferenceServer, ModelStore, run_closed_loop

from benchmarks.conftest import save_result

N_REQUESTS = 160
CONCURRENCY = 32
WORKERS = 4
MICRO_ITERS = 20_000
TIME_SCALE = 0.35
ATTAINMENT_FLOOR = 0.6   # hard in-test bar; compare.py gates the level


def _plain_run(store, images):
    server = InferenceServer(
        store, workers=WORKERS, max_batch_size=16, max_queue_depth=512,
    )
    with server:
        outcome = run_closed_loop(
            server, images, "lenet_small", "fixed8",
            n_requests=N_REQUESTS, concurrency=CONCURRENCY,
        )
    assert outcome.client_errors == 0 and outcome.lost == 0
    return outcome.report


def test_bench_control(results_dir):
    split = load_dataset("digits", n_train=128, n_test=128, seed=0)
    images = split.test.images
    store = ModelStore(calibration_data={"digits": split.train.images})
    store.warm("lenet_small", "fixed8")
    store.warm("lenet_small", "fixed4")

    # -- disabled-loop overhead -------------------------------------
    plain = _plain_run(store, images)

    bucket = TokenBucket()  # unlimited: the uncontrolled default
    tuner = AutoTuner(
        SLOPolicy(latency_slo_ms=50.0),
        TierLadder.from_precisions(["fixed8", "fixed4"]),
    )
    started = time.perf_counter()
    for _ in range(MICRO_ITERS):
        bucket.try_acquire()
        tuner.route("fixed8", 0)
    hook_ms = (time.perf_counter() - started) / MICRO_ITERS * 1e3
    overhead_pct = 100.0 * hook_ms / plain.latency_ms_mean

    # -- flash-crowd scenario: autotuned vs static --------------------
    def factory():
        return InferenceServer(
            store, workers=WORKERS, max_batch_size=16, max_queue_depth=512,
        )

    probe = factory().start()
    try:
        slo_ms = calibrate_slo(probe, images, "lenet_small", "fixed8")
    finally:
        probe.stop()

    scenario = get_scenario("flash_crowd").scaled(TIME_SCALE)
    runner = ScenarioRunner(
        factory, images, "lenet_small", "fixed8",
        policy=SLOPolicy(latency_slo_ms=slo_ms),
        ladder=TierLadder.from_precisions(["fixed8", "fixed4"]),
        knobs=KnobConfig(max_batch=16, preferred_batch=8),
        interval_s=0.05,
    )
    scenario_verdict, autotuned, static = runner.judge(
        scenario, slo_ms, attainment_target=ATTAINMENT_FLOOR
    )

    lines = [
        "Closed-loop control: flash crowd "
        f"(time scale {TIME_SCALE}, SLO {slo_ms:.2f} ms calibrated)",
        "",
        f"SLO attainment (autotuned) : {autotuned.attainment * 100:.1f} %",
        f"SLO attainment (static)    : {static.attainment * 100:.1f} %",
        f"client p99 (autotuned)     : {autotuned.p99_ms:.2f} ms",
        f"client p99 (static)        : {static.p99_ms:.2f} ms",
        f"energy saved vs static     : "
        f"{scenario_verdict.energy_saved_pct:.1f} %",
        f"controller actions         : "
        f"{len(autotuned.tuner.actions)}",
        f"disabled hooks             : {1e3 * hook_ms:.3f} us/request",
        f"disabled-loop overhead     : {overhead_pct:.4f} %",
    ]
    save_result(results_dir, "control.txt", "\n".join(lines))
    with open(os.path.join(results_dir, "control.json"), "w") as handle:
        json.dump({
            "slo_attainment": round(autotuned.attainment, 4),
            "baseline_attainment": round(static.attainment, 4),
            "slo_ms": round(slo_ms, 3),
            "energy_saved_pct": round(scenario_verdict.energy_saved_pct, 3),
            "overhead_pct": round(overhead_pct, 5),
        }, handle, indent=2)
        handle.write("\n")

    # acceptance: the disabled loop is free (< 2% of request latency)
    assert overhead_pct < 2.0, (
        f"disabled control hooks cost {overhead_pct:.2f}% of latency"
    )
    # acceptance: the controller holds the SLO and drops nothing
    assert autotuned.lost == 0 and static.lost == 0
    assert autotuned.attainment >= ATTAINMENT_FLOOR, (
        f"autotuned attainment {autotuned.attainment:.2f} below "
        f"{ATTAINMENT_FLOOR}"
    )
