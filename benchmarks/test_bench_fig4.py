"""Benchmark: regenerate Figure 4 (Pareto frontier, accuracy vs energy)."""

from repro.experiments import fig4
from benchmarks.conftest import save_result


def test_bench_fig4(benchmark, runner, results_dir):
    result = benchmark.pedantic(
        fig4.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    text = fig4.format_results(result)
    save_result(results_dir, "fig4.txt", text)

    points = result["points"]
    frontier = result["frontier"]
    assert len(points) >= 8, "most Table V rows should converge"
    assert frontier

    # frontier is sorted by energy with non-decreasing accuracy
    energies = [p.energy_uj for p in frontier]
    accuracies = [p.accuracy for p in frontier]
    assert energies == sorted(energies)
    assert accuracies == sorted(accuracies)

    # the float32 baseline never sits at the cheap end of the frontier
    baseline = result["baseline"]
    assert baseline is not None
    cheapest = frontier[0]
    assert cheapest.energy_uj < baseline.energy_uj

    # the paper's argument: some enlarged low-precision design should
    # dominate the full-precision baseline outright
    assert result["dominates_baseline"], (
        "expected at least one design dominating float32 ALEX"
    )
