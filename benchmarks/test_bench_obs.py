"""Observability overhead: tracing must be ~free when disabled.

The instrumentation in ``Trainer.fit`` runs on every epoch of every
sweep, so the disabled-tracer path has to stay negligible.  The check
is deliberately noise-tolerant: measure the per-call cost of a
disabled span directly, scale it by a generous overcount of the spans
one ``fit`` actually opens, and require that total to stay under 2% of
the measured fit wall time.
"""

import time

import numpy as np

from repro import nn, obs
from repro.data import load_dataset
from tests.conftest import make_tiny_cnn


def _fit_once(epochs: int) -> float:
    split = load_dataset("digits", n_train=200, n_test=50, seed=0)
    network = make_tiny_cnn()
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.01, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    start = time.perf_counter()
    trainer.fit(
        split.train.images, split.train.labels,
        split.val.images, split.val.labels,
        epochs=epochs,
    )
    return time.perf_counter() - start


def test_noop_tracer_overhead_under_two_percent():
    assert obs.get_tracer().enabled is False  # the shipped default

    epochs = 2
    fit_s = _fit_once(epochs)

    tracer = obs.Tracer(enabled=False)
    rounds = 10_000
    start = time.perf_counter()
    for _ in range(rounds):
        with tracer.span("noop", epoch=0):
            pass
    per_span_s = (time.perf_counter() - start) / rounds

    # fit opens 1 fit-span + one span per epoch; allow 100x that many
    # (room for future per-batch instrumentation) and still demand <2%.
    generous_span_count = 100 * (1 + epochs)
    overhead = per_span_s * generous_span_count
    assert overhead < 0.02 * fit_s, (
        f"no-op span cost {per_span_s * 1e6:.2f} us x {generous_span_count} "
        f"= {overhead * 1e3:.3f} ms vs fit {fit_s * 1e3:.1f} ms"
    )


def test_enabled_tracer_stays_cheap_per_span(benchmark):
    tracer = obs.Tracer()

    def one_span():
        with tracer.span("bench", tag="x"):
            pass

    benchmark(one_span)
    assert tracer.records("bench")


def test_metrics_instruments_stay_cheap(benchmark):
    registry = obs.MetricsRegistry()
    counter = registry.counter("bench.hits")
    histogram = registry.histogram("bench.ms")

    def observe():
        counter.inc()
        histogram.observe(1.0)

    benchmark(observe)
    assert counter.value > 0
