"""Benchmark regression gate for CI.

Runs the timed benchmark suite (one pytest subprocess per file so each
gets a clean interpreter), collects wall-times plus the parallel-sweep
metrics from ``results/parallel_sweep.json``, writes everything to
``BENCH_ci.json`` and compares against the committed
``benchmarks/results/baseline.json``.

A metric fails the gate when it regresses by more than
``THRESHOLD`` (25%) relative to the baseline AND, for wall-times, the
absolute slowdown exceeds ``WALL_FLOOR_S`` — small benchmarks jitter
by whole multiples of themselves on shared runners, and the floor
keeps that noise from failing builds.

Usage::

    python benchmarks/compare.py                  # run, write, compare
    python benchmarks/compare.py --update-baseline
    python benchmarks/compare.py --skip-run       # compare existing output
    python benchmarks/compare.py --self-test      # prove the gate trips

Exit status 0 on pass, 1 on regression or benchmark failure.
"""

import argparse
import json
import os
import subprocess
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
RESULTS = os.path.join(HERE, "results")
BASELINE_PATH = os.path.join(RESULTS, "baseline.json")
OUTPUT_PATH = os.path.join(REPO, "BENCH_ci.json")

SCHEMA = 1
THRESHOLD = 0.25      # relative regression that fails the gate
WALL_FLOOR_S = 5.0    # absolute wall-time slack below which we never fail

#: benchmark file -> short metric name for its wall-time
BENCH_FILES = {
    "test_bench_table3.py": "wall_s.table3",
    "test_bench_serve.py": "wall_s.serve",
    "test_bench_kernels.py": "wall_s.kernels",
    "test_bench_parallel_sweep.py": "wall_s.parallel_sweep",
    "test_bench_search.py": "wall_s.search",
    "test_bench_resilience.py": "wall_s.resilience",
    "test_bench_registry.py": "wall_s.registry",
    "test_bench_sim.py": "wall_s.sim",
    "test_bench_control.py": "wall_s.control",
    "test_bench_fleet.py": "wall_s.fleet",
}

#: metrics that are meaningless below 4 CPUs (process parallelism
#: cannot win on fewer cores); compared only when both the baseline
#: and the current run had >= 4
CPU_GATED = {"parallel.speedup", "serve.fleet_speedup", "wall_s.fleet"}

#: metric name -> which direction is better
DIRECTIONS = {
    "wall_s.table3": "lower",
    "wall_s.serve": "lower",
    "wall_s.kernels": "lower",
    "wall_s.parallel_sweep": "lower",
    "wall_s.search": "lower",
    "wall_s.resilience": "lower",
    "wall_s.registry": "lower",
    "wall_s.sim": "lower",
    "wall_s.control": "lower",
    "wall_s.kernels_fused": "lower",
    "wall_s.fleet": "lower",
    "parallel.cache_hit_rate": "higher",
    "search.cache_hit_rate": "higher",
    "parallel.speedup": "higher",
    "kernels.fused_speedup": "higher",
    "serve.fleet_speedup": "higher",
    "control.slo_attainment": "higher",
}


def run_benchmarks():
    """Run every benchmark file; return {metric: wall_s}. Exits on failure."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (os.path.join(REPO, "src"), env.get("PYTHONPATH"))
        if part
    )
    walls = {}
    for filename, metric in BENCH_FILES.items():
        path = os.path.join(HERE, filename)
        print(f"[bench] running {filename} ...", flush=True)
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", path, "-q", "--no-header"],
            cwd=REPO, env=env,
        )
        elapsed = time.perf_counter() - started
        if proc.returncode != 0:
            print(f"[bench] FAIL: {filename} exited {proc.returncode}")
            sys.exit(1)
        walls[metric] = round(elapsed, 2)
        print(f"[bench] {filename}: {elapsed:.1f}s")
    return walls


def collect_metrics(walls):
    """Merge wall-times with the JSON metrics benchmark files emit."""
    metrics = dict(walls)
    sweep_path = os.path.join(RESULTS, "parallel_sweep.json")
    with open(sweep_path) as handle:
        sweep = json.load(handle)
    metrics["parallel.cache_hit_rate"] = sweep["cache_hit_rate"]
    metrics["parallel.speedup"] = sweep["speedup"]
    search_path = os.path.join(RESULTS, "search.json")
    with open(search_path) as handle:
        metrics["search.cache_hit_rate"] = json.load(handle)["cache_hit_rate"]
    kernels_path = os.path.join(RESULTS, "kernels_fused.json")
    with open(kernels_path) as handle:
        kernels = json.load(handle)
    metrics["wall_s.kernels_fused"] = kernels["fused_s"]
    metrics["kernels.fused_speedup"] = kernels["speedup"]
    control_path = os.path.join(RESULTS, "control.json")
    with open(control_path) as handle:
        metrics["control.slo_attainment"] = \
            json.load(handle)["slo_attainment"]
    fleet_path = os.path.join(RESULTS, "fleet.json")
    if os.path.exists(fleet_path):  # the fleet bench skips below 4 CPUs
        with open(fleet_path) as handle:
            metrics["serve.fleet_speedup"] = json.load(handle)["speedup"]
    return {
        "schema": SCHEMA,
        "cpu_count": os.cpu_count() or 1,
        "metrics": metrics,
    }


def compare(current, baseline):
    """Return a list of human-readable regression strings (empty = pass).

    ``CPU_GATED`` metrics (parallel/fleet speedups and the fleet wall)
    only gate when both runs had >= 4 CPUs: on fewer cores process
    parallelism cannot win and the numbers are noise.
    """
    failures = []
    for name, base_value in sorted(baseline["metrics"].items()):
        direction = DIRECTIONS.get(name, "lower")
        if name in CPU_GATED:
            if min(current.get("cpu_count", 1), baseline.get("cpu_count", 1)) < 4:
                continue
        current_value = current["metrics"].get(name)
        if current_value is None:
            failures.append(f"{name}: missing from current run")
            continue
        if base_value <= 0:
            continue
        if direction == "lower":
            ratio = (current_value - base_value) / base_value
            if ratio > THRESHOLD and current_value - base_value > WALL_FLOOR_S:
                failures.append(
                    f"{name}: {base_value:g} -> {current_value:g} "
                    f"(+{100 * ratio:.0f}%, threshold {100 * THRESHOLD:.0f}%)"
                )
        else:
            ratio = (base_value - current_value) / base_value
            if ratio > THRESHOLD:
                failures.append(
                    f"{name}: {base_value:g} -> {current_value:g} "
                    f"(-{100 * ratio:.0f}%, threshold {100 * THRESHOLD:.0f}%)"
                )
    return failures


def self_test(baseline):
    """Prove the gate trips on an injected >25% regression."""
    clean = {
        "schema": SCHEMA,
        "cpu_count": baseline.get("cpu_count", 1),
        "metrics": dict(baseline["metrics"]),
    }
    assert compare(clean, baseline) == [], "clean copy must pass the gate"

    regressed = {
        "schema": SCHEMA,
        "cpu_count": baseline.get("cpu_count", 1),
        "metrics": dict(baseline["metrics"]),
    }
    wall_metrics = [
        m for m in regressed["metrics"]
        if m.startswith("wall_s.") and m not in CPU_GATED
    ]
    target = wall_metrics[0]
    # 1.5x the baseline and comfortably above the absolute floor
    regressed["metrics"][target] = round(
        max(1.5 * baseline["metrics"][target],
            baseline["metrics"][target] + 2 * WALL_FLOOR_S), 2,
    )
    failures = compare(regressed, baseline)
    assert failures, "injected 50% wall-time regression must fail the gate"
    print(f"[bench] self-test: injected regression on {target} was caught:")
    for line in failures:
        print(f"[bench]   {line}")

    dropped = {
        "schema": SCHEMA,
        "cpu_count": baseline.get("cpu_count", 1),
        "metrics": dict(baseline["metrics"]),
    }
    dropped["metrics"]["parallel.cache_hit_rate"] = round(
        0.5 * baseline["metrics"]["parallel.cache_hit_rate"], 4
    )
    failures = compare(dropped, baseline)
    assert failures, "halved cache hit rate must fail the gate"
    print("[bench] self-test: halved cache_hit_rate was caught:")
    for line in failures:
        print(f"[bench]   {line}")
    print("[bench] self-test passed")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument("--output", default=OUTPUT_PATH)
    parser.add_argument(
        "--skip-run", action="store_true",
        help="compare an existing --output file instead of re-running",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current run as the new committed baseline",
    )
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify the gate fails on an injected regression, then exit",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        with open(args.baseline) as handle:
            self_test(json.load(handle))
        return 0

    if args.skip_run:
        with open(args.output) as handle:
            current = json.load(handle)
    else:
        current = collect_metrics(run_benchmarks())
        with open(args.output, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[bench] wrote {args.output}")

    if args.update_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[bench] baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"[bench] no baseline at {args.baseline}; "
              "run with --update-baseline to create one")
        return 1

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    failures = compare(current, baseline)
    if failures:
        print("[bench] REGRESSIONS DETECTED:")
        for line in failures:
            print(f"[bench]   {line}")
        return 1
    print(f"[bench] all {len(baseline['metrics'])} metrics within "
          f"{100 * THRESHOLD:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
