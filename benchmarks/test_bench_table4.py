"""Benchmark: regenerate Table IV (digits/svhn accuracy + energy).

Quick mode trains the proxy networks on the synthetic tasks; the shape
assertions encode the paper's findings:

* the easy (MNIST-role) task loses essentially nothing down to 8 bits;
* the harder (SVHN-role) task keeps accuracy at 16 bits but degrades or
  fails at aggressive precisions;
* the energy-savings column tracks Table III.
"""

from repro.experiments import table4
from benchmarks.conftest import save_result


def test_bench_table4(benchmark, runner, results_dir):
    results = benchmark.pedantic(
        table4.run, kwargs={"runner": runner}, rounds=1, iterations=1
    )
    text = table4.format_results(results)
    save_result(results_dir, "table4.txt", text)

    digits = {p.spec.key: p for p in results["digits"]}
    svhn = {p.spec.key: p for p in results["svhn"]}

    # --- digits (MNIST role): high accuracy, tiny quantization loss ----
    assert digits["float32"].accuracy > 0.85
    for key in ("fixed32", "fixed16", "fixed8"):
        assert digits[key].accuracy > digits["float32"].accuracy - 0.05, key

    # --- svhn (SVHN role): works at float, 16 bits close behind -------
    assert svhn["float32"].accuracy > 0.45
    assert svhn["fixed16"].converged
    assert svhn["fixed16"].accuracy > svhn["float32"].accuracy - 0.15

    # --- energy savings track Table III -------------------------------
    for task in (digits, svhn):
        assert task["fixed16"].energy_saving_pct > 50.0
        assert task["fixed8"].energy_saving_pct > 75.0
        assert task["binary"].energy_saving_pct > 90.0
        savings = [task[k].energy_saving_pct
                   for k in ("fixed32", "fixed16", "fixed8", "fixed4")]
        assert savings == sorted(savings)

    # --- per-image energies match the paper's column ------------------
    assert abs(digits["float32"].energy_uj - 60.74) / 60.74 < 0.10
    assert abs(svhn["float32"].energy_uj - 754.18) / 754.18 < 0.10
