"""Benchmark: event-driven simulation of LeNet across Table III.

Runs the cycle-level tile simulator (``repro.hw.sim``) over every
paper precision on LeNet and records the simulated cycles, energy and
the gap to the analytical model.  Hardware-only — exact in every mode.

The wall-time of this file is gated by ``compare.py`` as
``wall_s.sim``; the per-precision energy gaps re-assert the headline
5% cross-validation tolerance so a model drift shows up here as well
as in tier-1.
"""

from repro.core.precision import PAPER_PRECISIONS
from repro.hw import Accelerator
from repro.hw.scheduler import TileScheduler
from repro.hw.sim import TileSimulator
from repro.zoo import build_network, network_info

from benchmarks.conftest import save_result

ENERGY_TOLERANCE_PCT = 5.0


def _simulate_all():
    info = network_info("lenet")
    network = build_network("lenet", seed=0)
    rows = []
    for spec in PAPER_PRECISIONS:
        accelerator = Accelerator.for_precision(spec.key)
        schedule = TileScheduler(accelerator).schedule(
            network, info.input_shape
        )
        report = TileSimulator(accelerator, schedule).run()
        rows.append(
            {
                "key": spec.key,
                "label": spec.label,
                "cycles": report.total_cycles,
                "energy_uj": report.energy_uj,
                "energy_gap_pct": report.energy_gap_pct,
                "utilization": report.utilization,
                "events": report.events_processed,
            }
        )
    return rows


def _format(rows) -> str:
    lines = [
        "Simulated LeNet, Table III precisions",
        f"{'precision':<16}{'cycles':>10}{'energy (uJ)':>14}"
        f"{'gap %':>8}{'util %':>8}{'events':>9}",
        "-" * 65,
    ]
    for row in rows:
        lines.append(
            f"{row['label']:<16}{row['cycles']:>10}"
            f"{row['energy_uj']:>14.2f}{row['energy_gap_pct']:>8.2f}"
            f"{100 * row['utilization']:>8.1f}{row['events']:>9}"
        )
    return "\n".join(lines)


def test_bench_sim(benchmark, results_dir):
    rows = benchmark.pedantic(_simulate_all, rounds=3, iterations=1)
    save_result(results_dir, "sim.txt", _format(rows))

    for row in rows:
        assert abs(row["energy_gap_pct"]) <= ENERGY_TOLERANCE_PCT, row["key"]
        assert 0.0 < row["utilization"] <= 1.0, row["key"]
    # energy must fall monotonically down the fixed-point column, as
    # in the analytical Table IV
    fixed = [r["energy_uj"] for r in rows
             if r["key"] in ("fixed32", "fixed16", "fixed8", "fixed4")]
    assert fixed == sorted(fixed, reverse=True)
