"""Benchmark: process-parallel sweep speedup and cache resume.

Times one cold sequential sweep (workers=1, no cache) against a cold
4-worker run over the same five precision points, asserts the parallel
results are bitwise identical, then re-runs against the warm cache and
asserts at least 90% of points are served without retraining.

The >= 2x speedup claim is asserted only on hosts with >= 4 CPUs;
single-core containers still run the determinism and cache-resume
checks but skip the timing assertion (process parallelism cannot beat
the sequential path without cores to run on).

Machine-readable metrics land in ``results/parallel_sweep.json`` for
``benchmarks/compare.py`` / the CI bench job.
"""

import functools
import json
import os
import time

from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.parallel import SweepCache
from repro.zoo import build_network

from benchmarks.conftest import save_result

SPECS = ["float32", "fixed8", "fixed4", "pow2", "binary"]
WORKERS = 4
NETWORK = "lenet_small"
SEED = 0


def _make_sweep():
    split = load_dataset("digits", n_train=512, n_test=256, seed=SEED)
    config = SweepConfig(float_epochs=3, qat_epochs=4, batch_size=32, seed=SEED)
    builder = functools.partial(build_network, NETWORK, SEED)
    return PrecisionSweep(builder, split, config)


def _assert_identical(parallel, sequential):
    assert len(parallel) == len(sequential)
    for got, want in zip(parallel, sequential):
        assert got.spec is want.spec
        assert got.accuracy == want.accuracy, got.spec.key
        assert got.converged == want.converged
        assert got.history == want.history, got.spec.key


def test_bench_parallel_sweep(results_dir, tmp_path):
    cache_dir = str(tmp_path / "sweep-cache")

    started = time.perf_counter()
    sequential = _make_sweep().run(SPECS)
    t_seq = time.perf_counter() - started

    started = time.perf_counter()
    parallel = _make_sweep().run(SPECS, workers=WORKERS, cache=cache_dir)
    t_par = time.perf_counter() - started
    _assert_identical(parallel, sequential)

    warm = SweepCache(cache_dir)
    started = time.perf_counter()
    resumed = _make_sweep().run(SPECS, workers=WORKERS, cache=warm)
    t_warm = time.perf_counter() - started
    _assert_identical(resumed, sequential)
    assert warm.hit_rate >= 0.9, (
        f"warm cache served only {warm.hits}/{warm.requests} points"
    )

    speedup = t_seq / t_par
    cpus = os.cpu_count() or 1
    payload = {
        "schema": 1,
        "network": NETWORK,
        "points": len(SPECS),
        "workers": WORKERS,
        "cpu_count": cpus,
        "t_seq_s": round(t_seq, 4),
        "t_par_s": round(t_par, 4),
        "t_warm_s": round(t_warm, 4),
        "speedup": round(speedup, 4),
        "cache_hit_rate": round(warm.hit_rate, 4),
    }
    with open(os.path.join(results_dir, "parallel_sweep.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    lines = [
        f"Parallel sweep: {NETWORK} on digits, {len(SPECS)} precision "
        f"points, {WORKERS} workers ({cpus} CPUs)",
        "",
        f"{'run':<24} {'wall s':>8}",
        f"{'sequential (cold)':<24} {t_seq:>8.2f}",
        f"{'parallel (cold)':<24} {t_par:>8.2f}",
        f"{'parallel (warm cache)':<24} {t_warm:>8.2f}",
        "",
        f"speedup (seq/par):      {speedup:.2f}x",
        f"warm cache hit rate:    {100 * warm.hit_rate:.0f}%",
        "results bitwise-identical across all three runs: yes",
    ]
    save_result(results_dir, "parallel_sweep.txt", "\n".join(lines))

    if cpus >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x parallel speedup on {cpus} CPUs, "
            f"got {speedup:.2f}x (seq {t_seq:.2f}s vs par {t_par:.2f}s)"
        )
    # the warm run never retrains, so it must beat the cold sequential
    # run regardless of core count
    assert t_warm < t_seq
