"""Benchmark: serving throughput/latency across batch sizes and precisions.

Runs the closed-loop load generator against the serving engine for
max-batch {1, 8, 32} at float32 and fixed-point (8,8), recording
throughput and p95 latency per cell, and asserts the headline claim:
dynamic batching at max-batch 32 sustains at least 2x the img/s of
unbatched serving.
"""

from repro.data import load_dataset
from repro.serve import InferenceServer, ModelStore, run_closed_loop

from benchmarks.conftest import save_result

BATCH_SIZES = (1, 8, 32)
PRECISIONS = ("float32", "fixed8")
N_REQUESTS = 192
CONCURRENCY = 64
WORKERS = 4


def _measure(store, images, precision, max_batch):
    server = InferenceServer(
        store,
        workers=WORKERS,
        max_batch_size=max_batch,
        max_delay_ms=2.0,
        max_queue_depth=512,
    )
    with server:
        outcome = run_closed_loop(
            server,
            images,
            "lenet_small",
            precision,
            n_requests=N_REQUESTS,
            concurrency=CONCURRENCY,
        )
    assert outcome.client_errors == 0
    report = outcome.report
    assert report.completed == N_REQUESTS
    return report


def test_bench_serve(results_dir):
    split = load_dataset("digits", n_train=128, n_test=128, seed=0)
    store = ModelStore(calibration_data={"digits": split.train.images})
    for precision in PRECISIONS:
        store.warm("lenet_small", precision)

    lines = [
        "Serving throughput: lenet_small, closed loop "
        f"({N_REQUESTS} requests, {WORKERS} workers, "
        f"concurrency {CONCURRENCY})",
        "",
        f"{'precision':<10} {'max-batch':>9} {'img/s':>10} "
        f"{'p95 ms':>8} {'mean batch':>10} {'uJ/img':>8}",
    ]
    throughput = {}
    for precision in PRECISIONS:
        for max_batch in BATCH_SIZES:
            report = _measure(store, split.test.images, precision, max_batch)
            throughput[(precision, max_batch)] = report.throughput_ips
            lines.append(
                f"{precision:<10} {max_batch:>9} "
                f"{report.throughput_ips:>10.1f} "
                f"{report.latency_ms_p95:>8.2f} "
                f"{report.mean_batch_size:>10.2f} "
                f"{report.energy_uj_per_image:>8.3f}"
            )
        best = max(
            throughput[(precision, size)] for size in BATCH_SIZES if size > 1
        )
        speedup = best / throughput[(precision, 1)]
        lines.append(
            f"{'':<10} dynamic batching speedup (best vs 1): {speedup:.2f}x"
        )

    save_result(results_dir, "serve.txt", "\n".join(lines))

    # headline claim: dynamic batching at batch <= 32 sustains >= 2x the
    # unbatched throughput (best batched cell; single cells sit close to
    # the line on one-core hosts where batching only amortizes dispatch)
    for precision in PRECISIONS:
        best = max(
            throughput[(precision, size)] for size in BATCH_SIZES if size > 1
        )
        assert best >= 2.0 * throughput[(precision, 1)], (
            f"{precision}: dynamic batching under 2x"
        )
