"""Benchmark: regenerate the Section V-B memory-footprint analysis."""

from repro.experiments import memory
from benchmarks.conftest import save_result


def test_bench_memory(benchmark, results_dir):
    records = benchmark.pedantic(memory.run, rounds=3, iterations=1)
    text = memory.format_results(records)
    save_result(results_dir, "memory.txt", text)

    by_network = {r["network"]: r for r in records}
    # paper's full-precision figures, within 5 %
    for name, paper_kb in memory.PAPER_PARAMETER_KB.items():
        model_kb = by_network[name]["footprints"]["float32"].parameter_kb
        assert abs(model_kb - paper_kb) / paper_kb < 0.05, name
    # "from 2x to 32x" reduction window
    for record in records:
        assert record["reductions"]["fixed16"] == 2.0
        assert record["reductions"]["binary"] == 32.0
